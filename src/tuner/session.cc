#include "tuner/session.h"

#include <cmath>
#include <fstream>

#include "common/contracts.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace restune {

namespace {

struct SessionMetrics {
  obs::Counter* iterations;
  obs::Counter* checkpoints;
  obs::Counter* resumes;

  static SessionMetrics* Get() {
    static SessionMetrics* m = [] {
      auto* registry = obs::MetricsRegistry::Global();
      // restune-lint: allow(naked-new) -- intentional leak, handle cache
      auto* metrics = new SessionMetrics();
      metrics->iterations =
          registry->GetCounter("restune_session_iterations_total");
      metrics->checkpoints =
          registry->GetCounter("restune_session_checkpoints_total");
      metrics->resumes = registry->GetCounter("restune_session_resumes_total");
      return metrics;
    }();
    return m;
  }
};

/// Rolling loop state shared by the live loop and checkpoint replay, so
/// both apply identical convergence/safeguard bookkeeping.
struct LoopState {
  int stable_iterations = 0;
  int consecutive_infeasible = 0;
  Observation last_obs;
};

}  // namespace

int SessionResult::IterationsToBest(double rel_tol) const {
  const double threshold = best_feasible_res * (1.0 + rel_tol);
  for (const IterationRecord& rec : history) {
    if (rec.best_feasible_res <= threshold) return rec.iteration;
  }
  return history.empty() ? 0 : history.back().iteration;
}

Status SessionResult::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << "iteration,res,tps,lat,feasible,best_feasible_res,failed,fault,"
         "attempts\n";
  out << "0," << default_observation.res << "," << default_observation.tps
      << "," << default_observation.lat << ",1," << default_observation.res
      << ",0,none,1\n";
  for (const IterationRecord& rec : history) {
    out << rec.iteration << "," << rec.observation.res << ","
        << rec.observation.tps << "," << rec.observation.lat << ","
        << (rec.feasible ? 1 : 0) << "," << rec.best_feasible_res << ","
        << (rec.failed ? 1 : 0) << "," << FaultKindName(rec.fault) << ","
        << rec.attempts << "\n";
  }
  return out.good() ? Status::OK()
                    : Status::IoError("write to '" + path + "' failed");
}

TuningSession::TuningSession(DbInstanceSimulator* simulator, Advisor* advisor,
                             SessionOptions options)
    : simulator_(simulator), advisor_(advisor), options_(options) {}

Result<SessionResult> TuningSession::Run() { return RunInternal(nullptr); }

Result<SessionResult> TuningSession::Resume() {
  if (options_.fault.checkpoint_path.empty()) {
    return Status::FailedPrecondition(
        "Resume requires fault.checkpoint_path to be set");
  }
  RESTUNE_ASSIGN_OR_RETURN(
      const SessionCheckpoint checkpoint,
      LoadSessionCheckpointFile(options_.fault.checkpoint_path));
  return RunInternal(&checkpoint);
}

Status TuningSession::WriteCheckpoint(const SessionResult& result,
                                      const std::vector<SessionEvent>& events,
                                      const EvaluationSupervisor& supervisor,
                                      int iteration) {
  SessionCheckpoint checkpoint;
  checkpoint.iteration = iteration;
  checkpoint.default_observation = result.default_observation;
  checkpoint.sla = result.sla;
  checkpoint.events = events;
  checkpoint.simulator_state = simulator_->ExportState();
  checkpoint.supervisor_rng = supervisor.rng_state();
  // Count this write before snapshotting so the stored totals include it.
  SessionMetrics::Get()->checkpoints->Add();
  checkpoint.metrics = obs::MetricsRegistry::Global()->Counters();
  return SaveSessionCheckpointFile(checkpoint,
                                   options_.fault.checkpoint_path);
}

Result<SessionResult> TuningSession::RunInternal(
    const SessionCheckpoint* resume_from) {
  EvaluationSupervisor supervisor(simulator_, options_.fault.retry,
                                  options_.fault.supervisor_seed);
  SessionResult result;
  LoopState state;

  // Applies one completed iteration (measured or failed) to the result and
  // loop state. Returns 0 to continue, 1 on convergence, 2 when the
  // infeasibility safeguard trips. Used verbatim by replay, which is what
  // makes a resumed run's bookkeeping identical to the uninterrupted one.
  auto apply_iteration = [&](const SessionEvent& event,
                             const IterationTiming& timing) -> int {
    IterationRecord rec;
    rec.iteration = event.iteration;
    rec.failed = event.failed;
    rec.fault = event.fault;
    rec.attempts = event.attempts;
    rec.backoff_seconds = event.backoff_seconds;
    rec.timing = timing;
    rec.replay_seconds = simulator_->options().replay_seconds;
    if (event.failed) {
      // No metrics to record; the suggested θ is kept for the trace. A
      // failed evaluation cannot be feasible and interrupts any stability
      // streak (the loop observed nothing comparable this iteration).
      rec.observation.theta = event.theta;
      rec.feasible = false;
      ++result.failed_iterations;
      state.stable_iterations = 0;
    } else {
      rec.observation = event.observation;
      rec.feasible = result.sla.IsFeasible(rec.observation,
                                           options_.sla_tolerance);
      if (rec.feasible && rec.observation.res < result.best_feasible_res) {
        result.best_feasible_res = rec.observation.res;
        result.best_theta = rec.observation.theta;
        result.best_iteration = event.iteration;
      }
    }
    rec.best_feasible_res = result.best_feasible_res;
    result.total_retries += event.attempts - 1;
    result.history.push_back(rec);

    if (!event.failed) {
      // Convergence rule: all three metrics stable for a whole window.
      auto rel_change = [](double now, double before) {
        return std::fabs(now - before) / std::max(std::fabs(before), 1e-9);
      };
      const Observation& obs = rec.observation;
      const bool stable = rel_change(obs.res, state.last_obs.res) <
                              options_.convergence_delta &&
                          rel_change(obs.tps, state.last_obs.tps) <
                              options_.convergence_delta &&
                          rel_change(obs.lat, state.last_obs.lat) <
                              options_.convergence_delta;
      state.stable_iterations = stable ? state.stable_iterations + 1 : 0;
      state.last_obs = obs;
      if (options_.stop_on_convergence &&
          state.stable_iterations >= options_.convergence_window) {
        result.converged = true;
        return 1;
      }
    }
    state.consecutive_infeasible =
        rec.feasible ? 0 : state.consecutive_infeasible + 1;
    if (options_.max_consecutive_infeasible > 0 &&
        state.consecutive_infeasible >= options_.max_consecutive_infeasible) {
      result.aborted_by_safeguard = true;
      return 2;
    }
    return 0;
  };

  std::vector<SessionEvent> events;
  int start_iteration = 1;

  if (resume_from == nullptr) {
    // The default-configuration evaluation anchors the SLA; it must not die
    // to a random injected fault, so the supervisor retries every kind here.
    RESTUNE_ASSIGN_OR_RETURN(
        const SupervisedEvaluation bootstrap,
        supervisor.Evaluate(simulator_->knob_space().DefaultTheta(),
                            /*retry_any_fault=*/true));
    if (!bootstrap.outcome.ok()) {
      return Status::Aborted(
          "default configuration evaluation failed (" +
          std::string(FaultKindName(bootstrap.outcome.fault().kind)) +
          "): " + bootstrap.outcome.fault().message);
    }
    result.default_observation = bootstrap.outcome.observation();
    result.sla = DbInstanceSimulator::ConstraintsFromDefault(
        result.default_observation);
    result.best_feasible_res = result.default_observation.res;
    result.best_theta = result.default_observation.theta;
    result.best_iteration = 0;
    state.last_obs = result.default_observation;
    RESTUNE_RETURN_IF_ERROR(
        advisor_->Begin(result.default_observation, result.sla));
  } else {
    // Resume: rebuild the advisor by replaying the event log through it.
    // Evaluations are NOT re-run — the metrics come from the log and the
    // simulator/supervisor RNG streams are restored afterwards, so the
    // continuation consumes exactly the draws the interrupted run would
    // have.
    result.resumed = true;
    SessionMetrics::Get()->resumes->Add();
    result.default_observation = resume_from->default_observation;
    result.sla = resume_from->sla;
    result.best_feasible_res = result.default_observation.res;
    result.best_theta = result.default_observation.theta;
    result.best_iteration = 0;
    state.last_obs = result.default_observation;
    RESTUNE_RETURN_IF_ERROR(
        advisor_->Begin(result.default_observation, result.sla));

    // Replay precondition: the event log must be the contiguous prefix
    // 1..n of a run. A permuted or gap-ridden log (hand-edited checkpoint,
    // version skew) would otherwise replay "successfully" while recording
    // bogus iteration numbers in the history.
    for (size_t i = 0; i < resume_from->events.size(); ++i) {
      if (resume_from->events[i].iteration != static_cast<int>(i) + 1) {
        return Status::FailedPrecondition(
            "checkpoint event log is not a contiguous run prefix: entry " +
            std::to_string(i) + " has iteration " +
            std::to_string(resume_from->events[i].iteration) + ", expected " +
            std::to_string(i + 1));
      }
    }
    for (size_t i = 0; i < resume_from->events.size(); ++i) {
      const SessionEvent& event = resume_from->events[i];
      RESTUNE_ASSIGN_OR_RETURN(const Vector theta, advisor_->SuggestNext());
      // The advisor owns suggestion quality: a non-finite knob here is an
      // advisor bug, not checkpoint corruption (the recorded theta is only
      // compared against, never executed, during replay).
      RESTUNE_DCHECK_ALL_FINITE(theta);
      // Bitwise verification: the freshly constructed advisor must retrace
      // the recorded run exactly (checkpoint doubles round-trip exactly at
      // precision 17). A mismatch means the advisor was rebuilt with
      // different seeds/options — continuing would silently fork the run.
      bool matches = theta.size() == event.theta.size();
      for (size_t c = 0; matches && c < theta.size(); ++c) {
        matches = theta[c] == event.theta[c];
      }
      if (!matches) {
        return Status::FailedPrecondition(
            "checkpoint replay diverged at iteration " +
            std::to_string(event.iteration) +
            "; advisor was not reconstructed with the original seeds");
      }
      if (event.failed) {
        if (options_.fault.failure_aware_learning) {
          EvaluationFault fault;
          fault.kind = event.fault;
          fault.message = "replayed from checkpoint";
          RESTUNE_RETURN_IF_ERROR(
              advisor_->ObserveFailure(event.theta, fault));
        }
      } else {
        RESTUNE_RETURN_IF_ERROR(advisor_->Observe(event.observation));
      }
      const int stop = apply_iteration(event, advisor_->last_timing());
      if (stop != 0 && i + 1 < resume_from->events.size()) {
        return Status::FailedPrecondition(
            "checkpoint event log continues past a session stop condition");
      }
      if (stop != 0) {
        if (!resume_from->metrics.empty()) {
          obs::MetricsRegistry::Global()->RestoreCounters(resume_from->metrics);
        }
        return result;
      }
    }
    events = resume_from->events;
    start_iteration = resume_from->iteration + 1;
    simulator_->RestoreState(resume_from->simulator_state);
    supervisor.set_rng_state(resume_from->supervisor_rng);
    // Replay re-ran the advisor's model work and inflated the live counters;
    // rewind them to the checkpointed totals so a resumed session reports
    // the same numbers as the uninterrupted run. Old checkpoints without a
    // metrics section leave the counters untouched.
    if (!resume_from->metrics.empty()) {
      obs::MetricsRegistry::Global()->RestoreCounters(resume_from->metrics);
    }
  }

  for (int iter = start_iteration; iter <= options_.max_iterations; ++iter) {
    RESTUNE_TRACE_SPAN("session.iteration");
    SessionMetrics::Get()->iterations->Add();
    Result<Vector> suggestion = [&]() -> Result<Vector> {
      RESTUNE_TRACE_SPAN("session.suggest");
      return advisor_->SuggestNext();
    }();
    if (!suggestion.ok()) {
      if (suggestion.status().code() == StatusCode::kOutOfRange) break;
      return suggestion.status();
    }
    RESTUNE_DCHECK_ALL_FINITE(*suggestion);
    RESTUNE_ASSIGN_OR_RETURN(const SupervisedEvaluation supervised,
                             supervisor.Evaluate(*suggestion));

    SessionEvent event;
    event.iteration = iter;
    event.theta = *suggestion;
    event.attempts = supervised.attempts;
    event.backoff_seconds = supervised.backoff_seconds;
    if (supervised.outcome.ok()) {
      event.observation = supervised.outcome.observation();
      RESTUNE_RETURN_IF_ERROR(advisor_->Observe(event.observation));
    } else {
      event.failed = true;
      event.fault = supervised.outcome.fault().kind;
      if (options_.fault.failure_aware_learning) {
        RESTUNE_RETURN_IF_ERROR(
            advisor_->ObserveFailure(*suggestion, supervised.outcome.fault()));
      }
    }
    events.push_back(event);

    const int stop = apply_iteration(event, advisor_->last_timing());
    if (!options_.fault.checkpoint_path.empty() &&
        options_.fault.checkpoint_period > 0 &&
        (stop != 0 || iter % options_.fault.checkpoint_period == 0)) {
      RESTUNE_RETURN_IF_ERROR(
          WriteCheckpoint(result, events, supervisor, iter));
    }
    if (stop != 0) break;
  }
  if (!options_.fault.checkpoint_path.empty() && !events.empty()) {
    RESTUNE_RETURN_IF_ERROR(WriteCheckpoint(result, events, supervisor,
                                            events.back().iteration));
  }
  return result;
}

}  // namespace restune
