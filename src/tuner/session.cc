#include "tuner/session.h"

#include <cmath>
#include <fstream>

namespace restune {

int SessionResult::IterationsToBest(double rel_tol) const {
  const double threshold = best_feasible_res * (1.0 + rel_tol);
  for (const IterationRecord& rec : history) {
    if (rec.best_feasible_res <= threshold) return rec.iteration;
  }
  return history.empty() ? 0 : history.back().iteration;
}

Status SessionResult::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << "iteration,res,tps,lat,feasible,best_feasible_res\n";
  out << "0," << default_observation.res << "," << default_observation.tps
      << "," << default_observation.lat << ",1," << default_observation.res
      << "\n";
  for (const IterationRecord& rec : history) {
    out << rec.iteration << "," << rec.observation.res << ","
        << rec.observation.tps << "," << rec.observation.lat << ","
        << (rec.feasible ? 1 : 0) << "," << rec.best_feasible_res << "\n";
  }
  return out.good() ? Status::OK()
                    : Status::IoError("write to '" + path + "' failed");
}

TuningSession::TuningSession(DbInstanceSimulator* simulator, Advisor* advisor,
                             SessionOptions options)
    : simulator_(simulator), advisor_(advisor), options_(options) {}

Result<SessionResult> TuningSession::Run() {
  SessionResult result;
  RESTUNE_ASSIGN_OR_RETURN(result.default_observation,
                           simulator_->EvaluateDefault());
  result.sla =
      DbInstanceSimulator::ConstraintsFromDefault(result.default_observation);
  result.best_feasible_res = result.default_observation.res;
  result.best_theta = result.default_observation.theta;
  result.best_iteration = 0;

  RESTUNE_RETURN_IF_ERROR(
      advisor_->Begin(result.default_observation, result.sla));

  int stable_iterations = 0;
  int consecutive_infeasible = 0;
  Observation last_obs = result.default_observation;
  for (int iter = 1; iter <= options_.max_iterations; ++iter) {
    Result<Vector> suggestion = advisor_->SuggestNext();
    if (!suggestion.ok()) {
      if (suggestion.status().code() == StatusCode::kOutOfRange) break;
      return suggestion.status();
    }
    RESTUNE_ASSIGN_OR_RETURN(const Observation obs,
                             simulator_->Evaluate(*suggestion));
    RESTUNE_RETURN_IF_ERROR(advisor_->Observe(obs));

    IterationRecord rec;
    rec.iteration = iter;
    rec.observation = obs;
    rec.feasible = result.sla.IsFeasible(obs, options_.sla_tolerance);
    if (rec.feasible && obs.res < result.best_feasible_res) {
      result.best_feasible_res = obs.res;
      result.best_theta = obs.theta;
      result.best_iteration = iter;
    }
    rec.best_feasible_res = result.best_feasible_res;
    rec.timing = advisor_->last_timing();
    rec.replay_seconds = simulator_->options().replay_seconds;
    result.history.push_back(rec);

    // Convergence rule: all three metrics stable for a whole window.
    auto rel_change = [](double now, double before) {
      return std::fabs(now - before) / std::max(std::fabs(before), 1e-9);
    };
    const bool stable = rel_change(obs.res, last_obs.res) <
                            options_.convergence_delta &&
                        rel_change(obs.tps, last_obs.tps) <
                            options_.convergence_delta &&
                        rel_change(obs.lat, last_obs.lat) <
                            options_.convergence_delta;
    stable_iterations = stable ? stable_iterations + 1 : 0;
    last_obs = obs;
    if (options_.stop_on_convergence &&
        stable_iterations >= options_.convergence_window) {
      result.converged = true;
      break;
    }
    consecutive_infeasible = rec.feasible ? 0 : consecutive_infeasible + 1;
    if (options_.max_consecutive_infeasible > 0 &&
        consecutive_infeasible >= options_.max_consecutive_infeasible) {
      result.aborted_by_safeguard = true;
      break;
    }
  }
  return result;
}

}  // namespace restune
