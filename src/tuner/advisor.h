#pragma once

#include <string>

#include "common/result.h"
#include "gp/observation.h"

namespace restune {

/// Wall-clock cost of the advisor's last iteration, split into the phases
/// of paper Table 3 (workload replay time is accounted by the session).
struct IterationTiming {
  double meta_processing_s = 0.0;
  double model_update_s = 0.0;
  double recommendation_s = 0.0;
};

/// A knob-recommendation strategy. The `TuningSession` drives the loop:
///
///   Begin(default observation, SLA)            — once
///   repeat: θ = SuggestNext(); Observe(eval(θ))
///
/// Implementations: ResTune (meta-learned CBO), plain CBO (ResTune-w/o-ML),
/// iTuned (unconstrained EI), OtterTune-w-Con (workload mapping + CEI),
/// CDBTune-w-Con (DDPG), and grid search.
class Advisor {
 public:
  virtual ~Advisor() = default;

  virtual const std::string& name() const = 0;

  /// Installs the SLA thresholds (derived from the default-config run) and
  /// lets the advisor ingest the default observation.
  virtual Status Begin(const Observation& default_observation,
                       const SlaConstraints& sla) = 0;

  /// Proposes the next normalized configuration to evaluate.
  virtual Result<Vector> SuggestNext() = 0;

  /// Feeds back the evaluation result of the last suggestion.
  virtual Status Observe(const Observation& observation) = 0;

  /// Timing of the most recent SuggestNext/Observe pair.
  IterationTiming last_timing() const { return timing_; }

 protected:
  IterationTiming timing_;
};

}  // namespace restune
