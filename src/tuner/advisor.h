#ifndef RESTUNE_TUNER_ADVISOR_H_
#define RESTUNE_TUNER_ADVISOR_H_

#include <algorithm>
#include <string>
#include <vector>

#include "common/result.h"
#include "dbsim/fault_injector.h"
#include "gp/observation.h"

namespace restune {

/// Clamps θ into the L∞ box [center - radius, center + radius] ∩ [0,1]^d —
/// the safety trust region's projection. Pure (no RNG), so it is legal as an
/// acquisition-optimizer `project` hook.
inline Vector ClampToTrustRegion(const Vector& theta, const Vector& center,
                                 double radius) {
  Vector out = theta;
  for (size_t d = 0; d < out.size() && d < center.size(); ++d) {
    const double lo = std::max(0.0, center[d] - radius);
    const double hi = std::min(1.0, center[d] + radius);
    out[d] = std::clamp(out[d], lo, hi);
  }
  return out;
}

/// Wall-clock cost of the advisor's last iteration, split into the phases
/// of paper Table 3 (workload replay time is accounted by the session).
struct IterationTiming {
  double meta_processing_s = 0.0;
  double model_update_s = 0.0;
  double recommendation_s = 0.0;
};

/// A knob-recommendation strategy. The `TuningSession` drives the loop:
///
///   Begin(default observation, SLA)            — once
///   repeat: θ = SuggestNext(); Observe(eval(θ))
///
/// Implementations: ResTune (meta-learned CBO), plain CBO (ResTune-w/o-ML),
/// iTuned (unconstrained EI), OtterTune-w-Con (workload mapping + CEI),
/// CDBTune-w-Con (DDPG), and grid search.
class Advisor {
 public:
  virtual ~Advisor() = default;

  virtual const std::string& name() const = 0;

  /// Installs the SLA thresholds (derived from the default-config run) and
  /// lets the advisor ingest the default observation.
  virtual Status Begin(const Observation& default_observation,
                       const SlaConstraints& sla) = 0;

  /// Proposes the next normalized configuration to evaluate.
  virtual Result<Vector> SuggestNext() = 0;

  /// Speculative suggestion while `pending` configurations are still being
  /// evaluated: the acquisition is locally penalized near each pending
  /// point (constant-liar-style), so concurrent asynchronous proposals
  /// diversify instead of collapsing onto one optimum. The default ignores
  /// `pending` and delegates to SuggestNext() — bitwise identical to the
  /// synchronous path when `pending` is empty.
  virtual Result<Vector> SuggestNextAsync(const std::vector<Vector>& pending) {
    (void)pending;
    return SuggestNext();
  }

  /// Installs a safety trust region: until cleared, every suggestion is
  /// clamped into the L∞ box [center - radius, center + radius] ∩ [0,1]^d.
  /// Default no-op for baselines without the safety path.
  virtual void SetTrustRegion(const Vector& center, double radius) {
    (void)center;
    (void)radius;
  }
  virtual void ClearTrustRegion() {}

  /// Feeds back the evaluation result of the last suggestion.
  virtual Status Observe(const Observation& observation) = 0;

  /// Feeds back a classified evaluation failure of the last suggestion
  /// (crash, timeout, retries-exhausted transient/corruption). Advisors that
  /// learn from failures treat θ as a hard SLA violation — a penalized point
  /// for the constraint models, never a fake value for the resource model —
  /// and quarantine fatal knob regions. The default ignores failures, which
  /// is the pre-fault-tolerance behavior of every baseline.
  virtual Status ObserveFailure(const Vector& theta,
                                const EvaluationFault& fault) {
    (void)theta;
    (void)fault;
    return Status::OK();
  }

  /// Timing of the most recent SuggestNext/Observe pair.
  IterationTiming last_timing() const { return timing_; }

 protected:
  IterationTiming timing_;
};

}  // namespace restune

#endif  // RESTUNE_TUNER_ADVISOR_H_
