#ifndef RESTUNE_TUNER_SAFETY_H_
#define RESTUNE_TUNER_SAFETY_H_

#include <cstddef>
#include <deque>

#include "linalg/matrix.h"

namespace restune {

/// Degraded-mode ladder of the always-on tuning loop. Ordered by severity;
/// the numeric values are persisted in checkpoints — never reorder.
enum class SessionMode {
  /// Normal operation: suggestions roam the full knob box.
  kHealthy = 0,
  /// The SLA is violated or evaluations keep failing: suggestions are
  /// clamped into the trust region around the last known-safe config.
  kConstrained = 1,
  /// The surrogate failed, retries were exhausted repeatedly, or the
  /// violation persists: the session stops exploring entirely and pins
  /// every evaluation at the last known-safe configuration until probes
  /// come back feasible.
  kFrozen = 2,
};

const char* SessionModeName(SessionMode mode);

/// SLA-violation monitor with hysteresis. A sliding window of feasibility
/// verdicts trips into "violated" when enough recent evaluations missed the
/// SLA, and recovers only after an unbroken streak of feasible results — so
/// the trust region does not flap on a single noisy measurement.
struct SlaMonitorOptions {
  /// Sliding-window length over recent evaluation verdicts.
  int window = 12;
  /// Infeasible verdicts within the window that trip the monitor.
  int trip_count = 3;
  /// Consecutive feasible verdicts required to clear a tripped monitor.
  int recovery_streak = 5;
};

class SlaMonitor {
 public:
  explicit SlaMonitor(SlaMonitorOptions options = {});

  /// Records one evaluation verdict (failures count as infeasible).
  void Record(bool feasible);

  bool violated() const { return violated_; }
  int recent_violations() const;
  void Reset();

 private:
  SlaMonitorOptions options_;
  std::deque<bool> window_;  // true = feasible
  int feasible_streak_ = 0;
  bool violated_ = false;
};

/// Options for the safety controller's degraded-mode ladder.
struct SafetyOptions {
  SlaMonitorOptions sla;
  /// Relative tolerance for the *monitor's* SLA verdict. Resource-oriented
  /// tuning lives on the constraint boundary, so near-optimal exploration
  /// routinely dips a few percent infeasible — that is business as usual,
  /// not an emergency. The monitor only counts gross misses (beyond this
  /// tolerance) as violations; strict feasibility still gates safe-config
  /// updates and best tracking.
  double monitor_tolerance = 0.15;
  /// L∞ half-width of the trust region around the last known-safe config
  /// (normalized knob units), applied while the mode is not healthy.
  double trust_radius = 0.2;
  /// Consecutive failed evaluations that demote healthy → constrained.
  int constrain_after_failures = 2;
  /// Consecutive failed evaluations that demote constrained → frozen.
  int freeze_after_failures = 4;
  /// Consecutive infeasible (but successful) evaluations that demote
  /// constrained → frozen.
  int freeze_after_infeasible = 10;
  /// Consecutive feasible frozen-probe results that promote frozen →
  /// constrained.
  int unfreeze_after_feasible = 3;
};

/// Drives the degraded-mode ladder (healthy → constrained →
/// frozen-at-last-safe-config) from the stream of evaluation completions.
/// Pure deterministic state machine: no RNG, no clocks — the event-driven
/// session rebuilds it on resume by replaying the event log and verifies
/// the recomputed mode against the checkpointed one. Mode and transition
/// counts are exported through the obs registry on every change.
class SafetyController {
 public:
  explicit SafetyController(SafetyOptions options = {});

  /// Installs the known-good baseline (the default configuration) as the
  /// initial safe config.
  void SetBaseline(const Vector& theta, double res);

  /// Ingests one evaluation completion (in delivery order). `failed` marks
  /// a fault (failures drive the failure ladder but carry no metrics, so
  /// they are NOT recorded in the SLA monitor). `feasible` is the strict
  /// SLA verdict of a successful observation and gates safe-config
  /// updates; `sla_ok` is the lenient verdict (within monitor_tolerance)
  /// the monitor and the infeasibility ladder consume. Both are ignored
  /// when failed. Returns the mode after the transition.
  SessionMode OnCompletion(const Vector& theta, bool failed, bool feasible,
                           bool sla_ok, double res);

  /// The surrogate failed to fit / the advisor errored: drop straight to
  /// frozen. Returns the new mode.
  SessionMode OnAdvisorFailure();

  SessionMode mode() const { return mode_; }
  bool sla_violated() const { return monitor_.violated(); }
  const SlaMonitor& monitor() const { return monitor_; }
  /// Center of the trust region / frozen probe target: the feasible config
  /// with the lowest resource usage seen so far (the baseline until one
  /// beats it).
  const Vector& safe_theta() const { return safe_theta_; }
  double safe_res() const { return safe_res_; }
  bool has_baseline() const { return !safe_theta_.empty(); }
  double trust_radius() const { return options_.trust_radius; }
  const SafetyOptions& options() const { return options_; }
  int consecutive_failures() const { return consecutive_failures_; }
  int consecutive_infeasible() const { return consecutive_infeasible_; }
  /// Total transitions since construction (resume replays re-count them).
  int transitions() const { return transitions_; }

 private:
  void TransitionTo(SessionMode next);

  SafetyOptions options_;
  SlaMonitor monitor_;
  SessionMode mode_ = SessionMode::kHealthy;
  Vector safe_theta_;
  double safe_res_ = 0.0;
  int consecutive_failures_ = 0;
  int consecutive_infeasible_ = 0;
  int consecutive_feasible_ = 0;
  int transitions_ = 0;
};

}  // namespace restune

#endif  // RESTUNE_TUNER_SAFETY_H_
