#ifndef RESTUNE_TUNER_OTTERTUNE_ADVISOR_H_
#define RESTUNE_TUNER_OTTERTUNE_ADVISOR_H_

#include <memory>
#include <vector>

#include "bo/acq_optimizer.h"
#include "bo/acquisition.h"
#include "common/rng.h"
#include "gp/multi_output_gp.h"
#include "meta/task.h"
#include "tuner/advisor.h"

namespace restune {

/// Options for the OtterTune-w-Con baseline.
struct OtterTuneAdvisorOptions {
  int initial_lhs_samples = 10;
  /// Re-run the workload mapping every k iterations.
  int remap_period = 5;
  AcqOptimizerOptions acq_optimizer;
  GpOptions gp;
  uint64_t seed = 41;
};

/// OtterTune with constraints (paper Section 7 baseline): maps the target
/// workload to the single most similar historical workload by Euclidean
/// distance between *internal metric* vectors, folds that workload's
/// observations into one GP together with the target observations, and
/// optimizes CEI on it.
///
/// The internal-metric distance is intentionally scale-dependent — this is
/// the mechanism behind OtterTune's hardware-adaptation failures that the
/// paper's ranking-based weighting fixes (Section 7.2.3).
class OtterTuneAdvisor : public Advisor {
 public:
  /// `repository_tasks` supply the mapped data; tasks lacking internal
  /// metrics in their observations are skipped during mapping.
  OtterTuneAdvisor(size_t dim, std::vector<TuningTask> repository_tasks,
                   OtterTuneAdvisorOptions options = {});

  const std::string& name() const override { return name_; }
  Status Begin(const Observation& default_observation,
               const SlaConstraints& sla) override;
  Result<Vector> SuggestNext() override;
  Status Observe(const Observation& observation) override;

  /// Index of the currently mapped task, or -1 if none.
  int mapped_task() const { return mapped_task_; }

 private:
  Status Remap();
  Status RefitModel();

  std::string name_ = "OtterTune-w-Con";
  size_t dim_;
  std::vector<TuningTask> tasks_;
  OtterTuneAdvisorOptions options_;
  Rng rng_;
  std::unique_ptr<MultiOutputGp> gp_;
  SlaConstraints sla_;
  std::vector<Observation> history_;
  std::vector<Vector> pending_lhs_;
  int mapped_task_ = -1;
  int observations_since_remap_ = 0;
};

}  // namespace restune

#endif  // RESTUNE_TUNER_OTTERTUNE_ADVISOR_H_
