#ifndef RESTUNE_TUNER_CDBTUNE_ADVISOR_H_
#define RESTUNE_TUNER_CDBTUNE_ADVISOR_H_

#include <memory>

#include "rl/ddpg.h"
#include "tuner/advisor.h"

namespace restune {

/// Options for the CDBTune-w-Con baseline.
struct CdbTuneAdvisorOptions {
  DdpgOptions ddpg;
  uint64_t seed = 47;
};

/// CDBTune with constraints (paper Section 7 baseline): a DDPG agent whose
/// state is the DBMS internal-metric vector and whose action is the knob
/// configuration. The reward follows CDBTune's shape with the paper's two
/// modifications: latency is replaced by resource utilization, and the
/// reward is zeroed when (a) resource improves but the SLA is violated, or
/// (b) resource regresses but the SLA holds.
class CdbTuneAdvisor : public Advisor {
 public:
  CdbTuneAdvisor(size_t dim, CdbTuneAdvisorOptions options = {});

  const std::string& name() const override { return name_; }
  Status Begin(const Observation& default_observation,
               const SlaConstraints& sla) override;
  Result<Vector> SuggestNext() override;
  Status Observe(const Observation& observation) override;

  /// The reward value computed for the most recent observation.
  double last_reward() const { return last_reward_; }

 private:
  Vector NormalizedState(const Observation& obs) const;
  double Reward(const Observation& obs) const;

  std::string name_ = "CDBTune-w-Con";
  size_t dim_;
  CdbTuneAdvisorOptions options_;
  std::unique_ptr<DdpgAgent> agent_;  // created at Begin (state dim known)
  SlaConstraints sla_;
  Observation initial_;
  Observation previous_;
  Vector previous_state_;
  Vector last_action_;
  bool has_previous_ = false;
  double last_reward_ = 0.0;
};

}  // namespace restune

#endif  // RESTUNE_TUNER_CDBTUNE_ADVISOR_H_
