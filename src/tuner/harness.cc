#include "tuner/harness.h"

#include <cstdlib>
#include <functional>
#include <memory>

#include "bo/lhs.h"
#include "common/logging.h"
#include "tuner/cbo_advisor.h"
#include "tuner/cdbtune_advisor.h"
#include "tuner/grid_advisor.h"
#include "tuner/ottertune_advisor.h"
#include "tuner/restune_advisor.h"

namespace restune {

const char* MethodName(MethodKind method) {
  switch (method) {
    case MethodKind::kResTune:
      return "ResTune";
    case MethodKind::kResTuneNoMl:
      return "ResTune-w/o-ML";
    case MethodKind::kResTuneNoWorkload:
      return "ResTune-w/o-Workload";
    case MethodKind::kOtterTune:
      return "OtterTune-w-Con";
    case MethodKind::kCdbTune:
      return "CDBTune-w-Con";
    case MethodKind::kITuned:
      return "iTuned";
    case MethodKind::kGridSearch:
      return "GridSearch";
  }
  return "?";
}

WorkloadCharacterizer TrainDefaultCharacterizer(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<std::string, double>> labeled;
  for (const WorkloadProfile& w : StandardWorkloads()) {
    WorkloadSqlGenerator gen(w);
    for (int i = 0; i < 300; ++i) {
      labeled.push_back(gen.SampleWithCost(&rng));
    }
  }
  WorkloadCharacterizer characterizer;
  const Status st = characterizer.Train(labeled);
  if (!st.ok()) {
    RESTUNE_LOG(kError) << "characterizer training failed: " << st.ToString();
  }
  return characterizer;
}

Vector ComputeMetaFeature(const WorkloadCharacterizer& characterizer,
                          const WorkloadProfile& workload, size_t num_queries,
                          uint64_t seed) {
  Rng rng(seed);
  WorkloadSqlGenerator gen(workload);
  const Result<Vector> feature =
      characterizer.MetaFeature(gen.Sample(num_queries, &rng));
  if (!feature.ok()) {
    RESTUNE_LOG(kWarning) << "meta-feature failed for " << workload.name
                          << ": " << feature.status().ToString();
    return {};
  }
  return *feature;
}

WorkloadProfile AdaptRequestRate(const WorkloadProfile& workload,
                                 const HardwareSpec& hardware,
                                 double buffer_pool_fix_gb) {
  if (workload.request_rate <= 0) return workload;
  WorkloadProfile open_loop = workload;
  open_loop.request_rate = 0;  // let the engine report raw capacity
  EngineConfig defaults = EngineConfig::Defaults(hardware);
  if (buffer_pool_fix_gb > 0) defaults.buffer_pool_gb = buffer_pool_fix_gb;
  const PerfMetrics m = EngineModel::Evaluate(defaults, hardware, open_loop);
  WorkloadProfile adapted = workload;
  adapted.request_rate = std::min(workload.request_rate, 0.85 * m.tps);
  return adapted;
}

Result<DbInstanceSimulator> MakeSimulator(const KnobSpace& space,
                                          char instance_label,
                                          const WorkloadProfile& workload_in,
                                          const ExperimentConfig& config) {
  RESTUNE_ASSIGN_OR_RETURN(const HardwareSpec hw,
                           HardwareInstance(instance_label));
  const WorkloadProfile workload =
      AdaptRequestRate(workload_in, hw, config.buffer_pool_fix_gb);
  SimulatorOptions options;
  options.resource = config.resource;
  options.noise_std = config.noise_std;
  options.seed = config.seed * 2654435761u + static_cast<uint64_t>(
                                                 instance_label);
  options.buffer_pool_fix_gb = config.buffer_pool_fix_gb;
  options.faults = config.faults;
  // Production workloads replay 5 minutes, benchmarks 3 (paper Table 3).
  options.replay_seconds = (workload.kind == WorkloadKind::kHotel ||
                            workload.kind == WorkloadKind::kSales)
                               ? 300.0
                               : 180.0;
  return DbInstanceSimulator(space, hw, workload, options);
}

TuningTask CollectHistoryTask(const KnobSpace& space,
                              const HardwareSpec& hardware,
                              const WorkloadProfile& workload_in,
                              const WorkloadCharacterizer& characterizer,
                              const ExperimentConfig& config,
                              size_t num_observations) {
  const WorkloadProfile workload =
      AdaptRequestRate(workload_in, hardware, config.buffer_pool_fix_gb);
  TuningTask task;
  task.name = workload.name + "@" + hardware.name;
  task.hardware = hardware.name;
  task.workload = workload.name;
  task.meta_feature = ComputeMetaFeature(characterizer, workload);

  SimulatorOptions options;
  options.resource = config.resource;
  options.noise_std = config.noise_std;
  options.seed = config.seed ^ std::hash<std::string>{}(task.name);
  options.buffer_pool_fix_gb = config.buffer_pool_fix_gb;
  DbInstanceSimulator sim(space, hardware, workload, options);

  Rng rng(options.seed ^ 0xabcdef);
  std::vector<Vector> points =
      LatinHypercubeSample(num_observations - 1, space.dim(), &rng);
  points.push_back(space.DefaultTheta());
  for (const Vector& theta : points) {
    Result<Observation> obs = sim.Evaluate(theta);
    if (obs.ok()) task.observations.push_back(std::move(obs).value());
  }
  return task;
}

std::vector<WorkloadProfile> RepositoryWorkloads() {
  std::vector<WorkloadProfile> workloads = StandardWorkloads();  // 5
  for (int v = 1; v <= 5; ++v) {
    workloads.push_back(TwitterVariation(v).value());  // +5 = 10
  }
  workloads.push_back(MakeWorkload(WorkloadKind::kSysbench, 30).value());
  workloads.push_back(MakeWorkload(WorkloadKind::kSysbench, 100).value());
  workloads.push_back(MakeWorkload(WorkloadKind::kTpcc, 100).value());
  workloads.push_back(MakeTpccWithWarehouses(500));
  workloads.push_back(MakeTpccWithWarehouses(800));  // +5 = 15
  // Rate variants of the production traces.
  WorkloadProfile hotel = MakeWorkload(WorkloadKind::kHotel).value();
  hotel.request_rate *= 0.6;
  hotel.name = "Hotel-offpeak";
  workloads.push_back(hotel);
  WorkloadProfile sales = MakeWorkload(WorkloadKind::kSales).value();
  sales.request_rate *= 1.25;
  sales.name = "Sales-peak";
  workloads.push_back(sales);  // 17 total
  return workloads;
}

DataRepository BuildPaperRepository(const KnobSpace& space,
                                    const WorkloadCharacterizer& characterizer,
                                    const ExperimentConfig& config,
                                    size_t observations_per_task) {
  DataRepository repo;
  for (char label : {'A', 'B'}) {
    const HardwareSpec hw = HardwareInstance(label).value();
    for (const WorkloadProfile& w : RepositoryWorkloads()) {
      TuningTask task = CollectHistoryTask(space, hw, w, characterizer,
                                           config, observations_per_task);
      const Status st = repo.AddTask(std::move(task));
      if (!st.ok()) {
        RESTUNE_LOG(kWarning) << "repository task skipped: " << st.ToString();
      }
    }
  }
  return repo;
}

namespace {

/// GP settings tuned for single-core experiment throughput.
GpOptions FastGpOptions(uint64_t seed) {
  GpOptions gp;
  gp.refit_period = 15;
  gp.hyperopt_max_iters = 20;
  gp.hyperopt_restarts = 0;
  gp.seed = seed;
  return gp;
}

AcqOptimizerOptions FastAcqOptions() {
  AcqOptimizerOptions acq;
  acq.num_candidates = 256;
  acq.num_refine = 3;
  acq.refine_passes = 2;
  return acq;
}

}  // namespace

Result<SessionResult> RunMethod(MethodKind method,
                                DbInstanceSimulator* simulator,
                                const MethodInputs& inputs,
                                const ExperimentConfig& config) {
  const size_t dim = simulator->knob_space().dim();
  std::unique_ptr<Advisor> advisor;
  switch (method) {
    case MethodKind::kResTune:
    case MethodKind::kResTuneNoWorkload: {
      ResTuneAdvisorOptions options;
      options.seed = config.seed;
      options.acq_optimizer = FastAcqOptions();
      options.meta.target_gp = FastGpOptions(config.seed ^ 0x77);
      options.meta.ranking_loss_samples = 20;
      options.workload_characterization_init =
          method == MethodKind::kResTune;
      advisor = std::make_unique<ResTuneAdvisor>(
          dim, simulator->knob_space().DefaultTheta(), inputs.base_learners,
          inputs.target_meta_feature, options);
      break;
    }
    case MethodKind::kResTuneNoMl: {
      CboAdvisorOptions options;
      options.acquisition = CboAcquisition::kConstrainedEi;
      options.gp = FastGpOptions(config.seed);
      options.acq_optimizer = FastAcqOptions();
      options.seed = config.seed;
      advisor = std::make_unique<CboAdvisor>("ResTune-w/o-ML", dim, options);
      break;
    }
    case MethodKind::kITuned: {
      CboAdvisorOptions options;
      options.acquisition = CboAcquisition::kUnconstrainedEi;
      options.gp = FastGpOptions(config.seed);
      options.acq_optimizer = FastAcqOptions();
      options.seed = config.seed;
      advisor = std::make_unique<CboAdvisor>("iTuned", dim, options);
      break;
    }
    case MethodKind::kOtterTune: {
      OtterTuneAdvisorOptions options;
      options.gp = FastGpOptions(config.seed);
      options.acq_optimizer = FastAcqOptions();
      options.seed = config.seed;
      advisor = std::make_unique<OtterTuneAdvisor>(
          dim, inputs.repository_tasks, options);
      break;
    }
    case MethodKind::kCdbTune: {
      CdbTuneAdvisorOptions options;
      options.seed = config.seed;
      advisor = std::make_unique<CdbTuneAdvisor>(dim, options);
      break;
    }
    case MethodKind::kGridSearch: {
      advisor = std::make_unique<GridSearchAdvisor>(dim, 8);
      break;
    }
  }
  SessionOptions session_options;
  session_options.max_iterations = config.iterations;
  session_options.sla_tolerance = config.sla_tolerance;
  session_options.max_consecutive_infeasible =
      config.max_consecutive_infeasible;
  session_options.fault = config.fault_tolerance;
  TuningSession session(simulator, advisor.get(), session_options);
  return session.Run();
}

int BenchIterations(int default_iters) {
  const char* env = std::getenv("RESTUNE_BENCH_ITERS");
  if (env == nullptr) return default_iters;
  const int v = std::atoi(env);
  return v > 0 ? std::min(v, default_iters) : default_iters;
}

}  // namespace restune
