#ifndef RESTUNE_TUNER_RESTUNE_ADVISOR_H_
#define RESTUNE_TUNER_RESTUNE_ADVISOR_H_

#include <memory>
#include <vector>

#include "bo/acq_optimizer.h"
#include "bo/acquisition.h"
#include "common/rng.h"
#include "meta/meta_learner.h"
#include "tuner/advisor.h"
#include "tuner/quarantine.h"

namespace restune {

/// Options for the full ResTune advisor.
struct ResTuneAdvisorOptions {
  MetaLearnerOptions meta;
  AcqOptimizerOptions acq_optimizer;
  /// When false, the first `meta.static_weight_iterations` configurations
  /// come from LHS instead of the meta-feature-weighted ensemble — the
  /// ResTune-w/o-Workload ablation of paper Fig. 6(b).
  bool workload_characterization_init = true;
  uint64_t seed = 23;
  /// Knob-region quarantine around crashed/timed-out configurations.
  QuarantineOptions quarantine;
  /// Local-penalization radius around pending (in-flight) configurations
  /// for SuggestNextAsync.
  double pending_penalty_radius = 0.15;
};

/// The full ResTune tuner: constrained BO (Section 5) on the meta-learner
/// surrogate (Section 6) with the adaptive static→dynamic weight schedule
/// (Section 6.4.3) and scale-unified constraints (Section 6.1).
class ResTuneAdvisor : public Advisor {
 public:
  /// `default_theta` is the DBA default configuration (where the re-scaled
  /// constraint thresholds λ' are evaluated each iteration).
  ResTuneAdvisor(size_t dim, Vector default_theta,
                 std::vector<BaseLearner> base_learners,
                 Vector target_meta_feature,
                 ResTuneAdvisorOptions options = {});

  const std::string& name() const override { return name_; }
  Status Begin(const Observation& default_observation,
               const SlaConstraints& sla) override;
  Result<Vector> SuggestNext() override;
  Result<Vector> SuggestNextAsync(const std::vector<Vector>& pending) override;
  Status Observe(const Observation& observation) override;
  Status ObserveFailure(const Vector& theta,
                        const EvaluationFault& fault) override;
  void SetTrustRegion(const Vector& center, double radius) override;
  void ClearTrustRegion() override;

  const MetaLearner& meta_learner() const { return *meta_learner_; }
  const KnobQuarantine& quarantine() const { return quarantine_; }

 private:
  std::string name_ = "ResTune";
  size_t dim_;
  Vector default_theta_;
  ResTuneAdvisorOptions options_;
  Rng rng_;
  std::unique_ptr<MetaLearner> meta_learner_;
  SlaConstraints sla_;
  KnobQuarantine quarantine_;
  std::vector<Observation> history_;
  std::vector<Vector> pending_lhs_;
  /// In-flight configurations penalizing the current SuggestNextAsync call.
  std::vector<Vector> pending_penalty_;
  bool trust_region_active_ = false;
  Vector trust_center_;
  double trust_radius_ = 1.0;
};

}  // namespace restune

#endif  // RESTUNE_TUNER_RESTUNE_ADVISOR_H_
