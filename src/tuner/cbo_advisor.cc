#include "tuner/cbo_advisor.h"

#include "bo/batch.h"
#include "bo/lhs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tuner/stopwatch.h"

namespace restune {

CboAdvisor::CboAdvisor(std::string name, size_t dim,
                       CboAdvisorOptions options)
    : name_(std::move(name)),
      dim_(dim),
      options_(options),
      rng_(options.seed),
      gp_(dim, options.gp),
      quarantine_(options.quarantine),
      exact_surrogate_(&gp_) {
  if (options_.surrogate_backend != SurrogateBackend::kExactGp) {
    ScalableSurrogateOptions so;
    so.backend = options_.surrogate_backend;
    so.subset_size = options_.surrogate_subset_size;
    so.forest = options_.surrogate_forest;
    so.gp = options_.gp;
    approx_ = std::make_unique<ScalableSurrogate>(dim_, so);
  }
}

Status CboAdvisor::Begin(const Observation& default_observation,
                         const SlaConstraints& sla) {
  sla_ = sla;
  pending_lhs_ = LatinHypercubeSample(
      static_cast<size_t>(options_.initial_lhs_samples), dim_, &rng_);
  return Observe(default_observation);
}

AcquisitionContext CboAdvisor::MakeContext() const {
  AcquisitionContext ctx;
  ctx.lambda_tps = sla_.min_tps;
  ctx.lambda_lat = sla_.max_lat;
  for (const Observation& obs : history_) {
    const bool counts = options_.acquisition ==
                                CboAcquisition::kUnconstrainedEi
                            ? true
                            : sla_.IsFeasible(obs);
    if (!counts) continue;
    if (!ctx.has_feasible || obs.res < ctx.best_feasible_res) {
      ctx.has_feasible = true;
      ctx.best_feasible_res = obs.res;
    }
  }
  return ctx;
}

Result<Vector> CboAdvisor::SuggestNext() {
  RESTUNE_TRACE_SPAN("advisor.suggest");
  static obs::Counter* suggestions =
      obs::MetricsRegistry::Global()->GetCounter(
          "restune_advisor_suggestions_total{advisor=\"cbo\"}");
  suggestions->Add();
  StopWatch watch;
  timing_.meta_processing_s = 0.0;
  // Pending LHS points that landed inside a quarantined region (a config
  // nearby crashed since the design was drawn) are skipped, not evaluated.
  // An active trust region clamps the design point like any suggestion.
  while (!pending_lhs_.empty()) {
    Vector next = pending_lhs_.back();
    pending_lhs_.pop_back();
    if (trust_region_active_) {
      next = ClampToTrustRegion(next, trust_center_, trust_radius_);
    }
    if (!quarantine_.empty() && quarantine_.Contains(next)) continue;
    timing_.recommendation_s = watch.Seconds();
    return next;
  }
  const Surrogate* surrogate_ptr = nullptr;
  {
    Result<const Surrogate*> active = ActiveSurrogate();
    if (!active.ok()) return active.status();
    surrogate_ptr = active.value();
  }
  const Surrogate& surrogate = *surrogate_ptr;
  const AcquisitionContext ctx = MakeContext();
  // The optimizer's pool drives the surrogate's batch inference too, so
  // the candidate sweep parallelizes instead of bottlenecking on the
  // calling thread (predictions are pool-size invariant).
  ThreadPool* acq_pool = options_.acq_optimizer.pool;
  auto acquisition = [&, acq_pool](const Matrix& thetas) {
    std::vector<double> values;
    switch (options_.acquisition) {
      case CboAcquisition::kConstrainedEi:
        values = ConstrainedExpectedImprovementBatch(surrogate, thetas, ctx,
                                                     acq_pool);
        break;
      case CboAcquisition::kUnconstrainedEi:
        values = UnconstrainedExpectedImprovementBatch(surrogate, thetas, ctx,
                                                       acq_pool);
        break;
      case CboAcquisition::kPenalizedEi:
        values = PenalizedExpectedImprovementBatch(surrogate, thetas, ctx,
                                                   options_.penalty, acq_pool);
        break;
    }
    if (values.empty()) values.assign(thetas.rows(), 0.0);
    PenalizeNearPoints(thetas, pending_penalty_,
                       options_.pending_penalty_radius, &values);
    return values;
  };
  AcqOptimizerOptions acq_options = options_.acq_optimizer;
  if (!quarantine_.empty()) {
    acq_options.reject = [this](const Vector& theta) {
      return quarantine_.Contains(theta);
    };
  }
  if (trust_region_active_) {
    acq_options.project = [this](const Vector& theta) {
      return ClampToTrustRegion(theta, trust_center_, trust_radius_);
    };
  }
  Vector next = MaximizeAcquisitionBatch(acquisition, dim_, &rng_, acq_options);
  timing_.recommendation_s = watch.Seconds();
  return next;
}

Result<Vector> CboAdvisor::SuggestNextAsync(
    const std::vector<Vector>& pending) {
  pending_penalty_ = pending;
  Result<Vector> next = SuggestNext();
  pending_penalty_.clear();
  return next;
}

void CboAdvisor::SetTrustRegion(const Vector& center, double radius) {
  trust_region_active_ = true;
  trust_center_ = center;
  trust_radius_ = radius;
}

void CboAdvisor::ClearTrustRegion() { trust_region_active_ = false; }

Result<const Surrogate*> CboAdvisor::ActiveSurrogate() {
  if (approx_ == nullptr) {
    if (!gp_.fitted()) {
      return Status::FailedPrecondition(
          "no observations yet; call Begin first");
    }
    return static_cast<const Surrogate*>(&exact_surrogate_);
  }
  if (history_.empty()) {
    return Status::FailedPrecondition("no observations yet; call Begin first");
  }
  // Approximate backends refit from scratch on demand: the whole point is
  // that one subset-GP or forest fit is cheaper than maintaining an exact
  // factorization at n=10k, so per-suggest refits stay bounded.
  if (approx_dirty_ || !approx_->fitted()) {
    RESTUNE_RETURN_IF_ERROR(approx_->Fit(history_));
    approx_dirty_ = false;
  }
  return static_cast<const Surrogate*>(approx_.get());
}

Status CboAdvisor::Observe(const Observation& observation) {
  StopWatch watch;
  history_.push_back(observation);
  if (approx_ == nullptr) {
    RESTUNE_RETURN_IF_ERROR(gp_.Update(observation));
  } else {
    // Exact-GP bookkeeping is skipped entirely — the approximate surrogate
    // refits from `history_` at the next suggestion.
    approx_dirty_ = true;
  }
  timing_.model_update_s = watch.Seconds();
  return Status::OK();
}

Status CboAdvisor::ObserveFailure(const Vector& theta,
                                  const EvaluationFault& fault) {
  StopWatch watch;
  if (theta.size() != dim_) {
    return Status::InvalidArgument("failure theta dimension mismatch");
  }
  // Fatal kinds (the DBMS died or hung) quarantine the surrounding knob box
  // so acquisition maximization never proposes an adjacent configuration.
  if (fault.kind == FaultKind::kCrash || fault.kind == FaultKind::kTimeout ||
      fault.kind == FaultKind::kStall) {
    quarantine_.Add(theta);
  }
  // The failed configuration enters the constraint models as a hard SLA
  // violation (zero throughput, double the latency bound) — evidence that
  // this region is infeasible — but never the resource model, which must
  // not learn from a fabricated resource value.
  if (gp_.fitted() && sla_.max_lat > 0.0) {
    Observation penalized;
    penalized.theta = theta;
    penalized.tps = 0.0;
    penalized.lat = 2.0 * sla_.max_lat;
    RESTUNE_RETURN_IF_ERROR(gp_.UpdateConstraintOnly(penalized));
  }
  timing_.model_update_s = watch.Seconds();
  return Status::OK();
}

}  // namespace restune
