#include "tuner/cbo_advisor.h"

#include "bo/lhs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tuner/stopwatch.h"

namespace restune {

CboAdvisor::CboAdvisor(std::string name, size_t dim,
                       CboAdvisorOptions options)
    : name_(std::move(name)),
      dim_(dim),
      options_(options),
      rng_(options.seed),
      gp_(dim, options.gp),
      quarantine_(options.quarantine) {}

Status CboAdvisor::Begin(const Observation& default_observation,
                         const SlaConstraints& sla) {
  sla_ = sla;
  pending_lhs_ = LatinHypercubeSample(
      static_cast<size_t>(options_.initial_lhs_samples), dim_, &rng_);
  return Observe(default_observation);
}

AcquisitionContext CboAdvisor::MakeContext() const {
  AcquisitionContext ctx;
  ctx.lambda_tps = sla_.min_tps;
  ctx.lambda_lat = sla_.max_lat;
  for (const Observation& obs : history_) {
    const bool counts = options_.acquisition ==
                                CboAcquisition::kUnconstrainedEi
                            ? true
                            : sla_.IsFeasible(obs);
    if (!counts) continue;
    if (!ctx.has_feasible || obs.res < ctx.best_feasible_res) {
      ctx.has_feasible = true;
      ctx.best_feasible_res = obs.res;
    }
  }
  return ctx;
}

Result<Vector> CboAdvisor::SuggestNext() {
  RESTUNE_TRACE_SPAN("advisor.suggest");
  static obs::Counter* suggestions =
      obs::MetricsRegistry::Global()->GetCounter(
          "restune_advisor_suggestions_total{advisor=\"cbo\"}");
  suggestions->Add();
  StopWatch watch;
  timing_.meta_processing_s = 0.0;
  // Pending LHS points that landed inside a quarantined region (a config
  // nearby crashed since the design was drawn) are skipped, not evaluated.
  while (!pending_lhs_.empty()) {
    Vector next = pending_lhs_.back();
    pending_lhs_.pop_back();
    if (!quarantine_.empty() && quarantine_.Contains(next)) continue;
    timing_.recommendation_s = watch.Seconds();
    return next;
  }
  if (!gp_.fitted()) {
    return Status::FailedPrecondition("no observations yet; call Begin first");
  }
  const GpSurrogate surrogate(&gp_);
  const AcquisitionContext ctx = MakeContext();
  auto acquisition = [&](const Matrix& thetas) {
    switch (options_.acquisition) {
      case CboAcquisition::kConstrainedEi:
        return ConstrainedExpectedImprovementBatch(surrogate, thetas, ctx);
      case CboAcquisition::kUnconstrainedEi:
        return UnconstrainedExpectedImprovementBatch(surrogate, thetas, ctx);
      case CboAcquisition::kPenalizedEi:
        return PenalizedExpectedImprovementBatch(surrogate, thetas, ctx,
                                                 options_.penalty);
    }
    return std::vector<double>(thetas.rows(), 0.0);
  };
  AcqOptimizerOptions acq_options = options_.acq_optimizer;
  if (!quarantine_.empty()) {
    acq_options.reject = [this](const Vector& theta) {
      return quarantine_.Contains(theta);
    };
  }
  Vector next = MaximizeAcquisitionBatch(acquisition, dim_, &rng_, acq_options);
  timing_.recommendation_s = watch.Seconds();
  return next;
}

Status CboAdvisor::Observe(const Observation& observation) {
  StopWatch watch;
  history_.push_back(observation);
  RESTUNE_RETURN_IF_ERROR(gp_.Update(observation));
  timing_.model_update_s = watch.Seconds();
  return Status::OK();
}

Status CboAdvisor::ObserveFailure(const Vector& theta,
                                  const EvaluationFault& fault) {
  StopWatch watch;
  if (theta.size() != dim_) {
    return Status::InvalidArgument("failure theta dimension mismatch");
  }
  // Fatal kinds (the DBMS died or hung) quarantine the surrounding knob box
  // so acquisition maximization never proposes an adjacent configuration.
  if (fault.kind == FaultKind::kCrash || fault.kind == FaultKind::kTimeout) {
    quarantine_.Add(theta);
  }
  // The failed configuration enters the constraint models as a hard SLA
  // violation (zero throughput, double the latency bound) — evidence that
  // this region is infeasible — but never the resource model, which must
  // not learn from a fabricated resource value.
  if (gp_.fitted() && sla_.max_lat > 0.0) {
    Observation penalized;
    penalized.theta = theta;
    penalized.tps = 0.0;
    penalized.lat = 2.0 * sla_.max_lat;
    RESTUNE_RETURN_IF_ERROR(gp_.UpdateConstraintOnly(penalized));
  }
  timing_.model_update_s = watch.Seconds();
  return Status::OK();
}

}  // namespace restune
