#ifndef RESTUNE_TUNER_SESSION_H_
#define RESTUNE_TUNER_SESSION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dbsim/simulator.h"
#include "tuner/advisor.h"
#include "tuner/checkpoint.h"
#include "tuner/supervisor.h"

namespace restune {

/// Fault-tolerance policy of a tuning session: how evaluations are
/// supervised, whether failures feed back into the advisor, and where
/// session state is checkpointed for crash recovery.
struct SessionFaultOptions {
  RetryPolicy retry;
  /// Feed classified evaluation failures back to the advisor as hard SLA
  /// violations (constraint evidence + knob quarantine). Off replicates the
  /// fail-and-forget behavior of a supervision-less loop.
  bool failure_aware_learning = true;
  /// Path of the session checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Checkpoint every this many iterations (a final checkpoint is always
  /// written when a path is set).
  int checkpoint_period = 10;
  /// Seed of the supervisor's backoff-jitter RNG.
  uint64_t supervisor_seed = 0x5eed;
};

/// Options for a tuning session.
struct SessionOptions {
  int max_iterations = 200;
  /// Relative tolerance when judging SLA feasibility (the paper accepts 5%
  /// measurement deviation).
  double sla_tolerance = 0.0;
  /// Stop when res/tps/lat all change by less than `convergence_delta`
  /// (relative) for `convergence_window` consecutive iterations — the
  /// paper's convergence rule (0.5% over 10 iterations, Section 4).
  bool stop_on_convergence = false;
  double convergence_delta = 0.005;
  int convergence_window = 10;
  /// Safety rail for production/online-troubleshooting use (Section 1's
  /// recovery-time framing): abort the session if this many consecutive
  /// suggestions violate the SLA. Failed evaluations count as violations.
  /// 0 disables the guard.
  int max_consecutive_infeasible = 0;
  /// Retry/backoff, failure-aware learning, and checkpointing policy.
  SessionFaultOptions fault;
};

/// Per-iteration record of a tuning session.
struct IterationRecord {
  int iteration = 0;
  Observation observation;
  bool feasible = false;
  /// Best feasible resource value up to and including this iteration
  /// (default-config value until something better is found).
  double best_feasible_res = 0.0;
  IterationTiming timing;
  double replay_seconds = 0.0;
  /// True when the evaluation failed for good (after retries); the
  /// observation then carries only θ, not metrics.
  bool failed = false;
  /// Final fault classification (kNone on success).
  FaultKind fault = FaultKind::kNone;
  /// Evaluation attempts the supervisor spent on this iteration.
  int attempts = 1;
  /// Total simulated backoff slept between this iteration's attempts.
  double backoff_seconds = 0.0;
};

/// Outcome of a tuning session.
struct SessionResult {
  Observation default_observation;
  SlaConstraints sla;
  std::vector<IterationRecord> history;
  double best_feasible_res = 0.0;
  Vector best_theta;
  int best_iteration = 0;  // 0 = default configuration
  bool converged = false;
  /// True when the session ended because the infeasibility safety rail
  /// tripped (the advisor kept violating the SLA).
  bool aborted_by_safeguard = false;
  /// Iterations whose evaluation failed after all supervision.
  int failed_iterations = 0;
  /// Extra evaluation attempts spent on retries across the whole session.
  int total_retries = 0;
  /// True when this result continues an interrupted run from a checkpoint.
  bool resumed = false;

  /// Iterations until the best feasible value was first reached within
  /// `rel_tol` (paper Table 4's "Iteration" rows).
  int IterationsToBest(double rel_tol = 0.0) const;

  /// Writes the per-iteration history as CSV
  /// (iteration,res,tps,lat,feasible,best_feasible_res,failed,fault,attempts)
  /// for plotting.
  Status WriteCsv(const std::string& path) const;
};

/// Drives one tuning task end to end: evaluates the DBA default to fix the
/// SLA thresholds, then loops advisor suggestion → supervised replay →
/// feedback, tracking the best feasible configuration (the paper's tuning
/// loop, Section 4). Every evaluation runs under the `EvaluationSupervisor`
/// (deadline, bounded retries with backoff); persistent failures feed back
/// into the advisor as hard SLA violations, and session state is
/// periodically checkpointed when a checkpoint path is configured.
class TuningSession {
 public:
  TuningSession(DbInstanceSimulator* simulator, Advisor* advisor,
                SessionOptions options = {});

  Result<SessionResult> Run();

  /// Continues an interrupted session from `fault.checkpoint_path`. The
  /// advisor (which must be freshly constructed with the original seeds and
  /// options) is rebuilt by replaying the checkpoint's event log — each
  /// replayed suggestion is verified bitwise against the recorded θ, so a
  /// divergent advisor configuration fails loudly instead of silently
  /// continuing a different run. The simulator's and supervisor's RNG
  /// streams are restored, making the continuation byte-identical to the
  /// uninterrupted run.
  Result<SessionResult> Resume();

 private:
  Result<SessionResult> RunInternal(const SessionCheckpoint* resume_from);
  Status WriteCheckpoint(const SessionResult& result,
                         const std::vector<SessionEvent>& events,
                         const EvaluationSupervisor& supervisor, int iteration);

  DbInstanceSimulator* simulator_;
  Advisor* advisor_;
  SessionOptions options_;
};

}  // namespace restune

#endif  // RESTUNE_TUNER_SESSION_H_
