#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "dbsim/simulator.h"
#include "tuner/advisor.h"

namespace restune {

/// Options for a tuning session.
struct SessionOptions {
  int max_iterations = 200;
  /// Relative tolerance when judging SLA feasibility (the paper accepts 5%
  /// measurement deviation).
  double sla_tolerance = 0.0;
  /// Stop when res/tps/lat all change by less than `convergence_delta`
  /// (relative) for `convergence_window` consecutive iterations — the
  /// paper's convergence rule (0.5% over 10 iterations, Section 4).
  bool stop_on_convergence = false;
  double convergence_delta = 0.005;
  int convergence_window = 10;
  /// Safety rail for production/online-troubleshooting use (Section 1's
  /// recovery-time framing): abort the session if this many consecutive
  /// suggestions violate the SLA. 0 disables the guard.
  int max_consecutive_infeasible = 0;
};

/// Per-iteration record of a tuning session.
struct IterationRecord {
  int iteration = 0;
  Observation observation;
  bool feasible = false;
  /// Best feasible resource value up to and including this iteration
  /// (default-config value until something better is found).
  double best_feasible_res = 0.0;
  IterationTiming timing;
  double replay_seconds = 0.0;
};

/// Outcome of a tuning session.
struct SessionResult {
  Observation default_observation;
  SlaConstraints sla;
  std::vector<IterationRecord> history;
  double best_feasible_res = 0.0;
  Vector best_theta;
  int best_iteration = 0;  // 0 = default configuration
  bool converged = false;
  /// True when the session ended because the infeasibility safety rail
  /// tripped (the advisor kept violating the SLA).
  bool aborted_by_safeguard = false;

  /// Iterations until the best feasible value was first reached within
  /// `rel_tol` (paper Table 4's "Iteration" rows).
  int IterationsToBest(double rel_tol = 0.0) const;

  /// Writes the per-iteration history as CSV
  /// (iteration,res,tps,lat,feasible,best_feasible_res) for plotting.
  Status WriteCsv(const std::string& path) const;
};

/// Drives one tuning task end to end: evaluates the DBA default to fix the
/// SLA thresholds, then loops advisor suggestion → simulated replay →
/// feedback, tracking the best feasible configuration (the paper's tuning
/// loop, Section 4).
class TuningSession {
 public:
  TuningSession(DbInstanceSimulator* simulator, Advisor* advisor,
                SessionOptions options = {});

  Result<SessionResult> Run();

 private:
  DbInstanceSimulator* simulator_;
  Advisor* advisor_;
  SessionOptions options_;
};

}  // namespace restune
