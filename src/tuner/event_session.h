#ifndef RESTUNE_TUNER_EVENT_SESSION_H_
#define RESTUNE_TUNER_EVENT_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "dbsim/simulator.h"
#include "tuner/advisor.h"
#include "tuner/checkpoint.h"
#include "tuner/safety.h"
#include "tuner/session.h"
#include "tuner/supervisor.h"

namespace restune {

/// Options for the event-driven tuning session.
struct EventSessionOptions {
  /// Completions to ingest before the session ends.
  int max_iterations = 200;
  /// Speculative q-CEI width: how many evaluations may be in flight at
  /// once. Suggestions beyond the first are penalized near pending points
  /// so the batch diversifies.
  int max_in_flight = 4;
  /// Relative tolerance when judging SLA feasibility.
  double sla_tolerance = 0.0;
  /// Per-evaluation watchdog deadline in simulated seconds, measured over
  /// the evaluation's whole supervised lifetime (attempts + backoff). A
  /// pending evaluation still undelivered at the deadline has its slot
  /// cancelled: stalls stay kStall, everything else is reclassified
  /// kTimeout. 0 derives `watchdog_multiplier * replay_seconds`.
  double watchdog_deadline_seconds = 0.0;
  double watchdog_multiplier = 12.0;
  /// SLA monitor, trust region, and degraded-mode ladder policy.
  SafetyOptions safety;
  /// Retry/backoff, failure-aware learning, and checkpointing policy
  /// (checkpoint_period counts completions here).
  SessionFaultOptions fault;
  /// Test hook simulating a kill: stop right after ingesting this many
  /// completions, leaving in-flight evaluations pending in the checkpoint.
  /// Pick a multiple of checkpoint_period so the halt write coincides with
  /// a periodic one (byte-identical resume comparison). 0 = disabled.
  int halt_after_completions = 0;
};

/// Point-in-time progress of a running event session, safe to read from a
/// monitoring thread while the session loop runs (see
/// `EventTuningSession::progress`).
struct EventSessionProgress {
  /// Completions ingested so far.
  int completed = 0;
  /// Launches issued so far (≥ completed; the gap is the in-flight set).
  uint64_t launched = 0;
  /// Evaluations currently awaiting delivery.
  size_t in_flight = 0;
  /// Simulated session clock.
  double clock_seconds = 0.0;
  /// Current rung of the degraded-mode ladder.
  SessionMode mode = SessionMode::kHealthy;
};

/// Always-on tuning loop: posts evaluation requests to the
/// `EvaluationSupervisor` asynchronously (up to `max_in_flight`
/// speculative suggestions, locally penalized near pending points) and
/// ingests completions in *delivery order* — generally out of order
/// relative to launches. Simulated delivery: each launch's outcome is
/// computed eagerly (so supervisor/simulator RNG is consumed in launch
/// order, making the loop thread-count invariant) and queued until the
/// session clock reaches its delivery time.
///
/// Safety (src/tuner/safety.h): an SLA monitor with hysteresis drives the
/// healthy → constrained → frozen ladder. While constrained, the advisor's
/// acquisition sweep is clamped into the L∞ trust region around the best
/// known-safe config; while frozen, the session stops consulting the
/// advisor and probes the safe config until results come back feasible. A
/// per-evaluation watchdog cancels pending slots that outlive their
/// deadline.
///
/// Durability: the totally ordered launch/completion log plus the pending
/// outcomes is the checkpoint. Resume replays the log through a freshly
/// constructed advisor and safety controller, verifying every replayed
/// suggestion and mode transition bit-for-bit, then re-materializes the
/// pending queue — a killed-and-resumed run continues byte-identically.
class EventTuningSession {
 public:
  EventTuningSession(DbInstanceSimulator* simulator, Advisor* advisor,
                     EventSessionOptions options = {});

  Result<SessionResult> Run();

  /// Continues an interrupted session from `fault.checkpoint_path`; see
  /// class comment. The advisor must be freshly constructed with the
  /// original seeds/options.
  Result<SessionResult> Resume();

  /// The totally ordered event log of the finished run (for tests and
  /// post-mortems).
  const std::vector<EventRecord>& records() const { return records_; }
  const SafetyController& safety() const { return safety_; }
  /// True when the run stopped via the halt_after_completions test hook.
  bool halted() const { return halted_; }

  /// Snapshot of the session's progress, safe to call from any thread
  /// while Run()/Resume() executes on another — the server direction needs
  /// a liveness probe for always-on sessions without stopping them. The
  /// loop publishes after every launch and ingest; everything else in this
  /// class stays single-threaded (owned by the thread inside Run).
  EventSessionProgress progress() const EXCLUDES(progress_mu_);

 private:
  /// A launched evaluation waiting for its delivery time.
  struct PendingEval {
    uint64_t seq = 0;
    Vector theta;
    double delivery_seconds = 0.0;
    bool failed = false;
    Observation observation;
    FaultKind fault = FaultKind::kNone;
    int attempts = 1;
    double backoff_seconds = 0.0;
    double elapsed_seconds = 0.0;
    bool watchdog_killed = false;
  };

  Result<SessionResult> RunInternal(const EventSessionCheckpoint* resume_from);
  /// Issues one launch: suggestion (advisor or frozen probe), eager
  /// supervised evaluation, watchdog classification, log + queue append.
  /// Returns false when the advisor is exhausted (kOutOfRange).
  Result<bool> Launch(EvaluationSupervisor* supervisor);
  /// Pops the earliest pending completion, feeds advisor + safety, records
  /// the completion event, and updates `result`. Returns the stop verdict
  /// (true = session should end).
  Status Ingest(SessionResult* result);
  /// Applies one delivered completion to the result bookkeeping (history,
  /// best tracking, retry totals). Shared verbatim by the live loop and
  /// checkpoint replay so both account identically.
  void ApplyCompletion(SessionResult* result, int iteration,
                       const PendingEval& eval, bool feasible);
  Status WriteCheckpoint(const SessionResult& result,
                         const EvaluationSupervisor& supervisor);
  double WatchdogDeadline() const;
  std::vector<Vector> PendingThetas() const;
  void PushPending(PendingEval eval);
  PendingEval PopPending();
  /// Copies the loop-owned counters into the mutex-guarded snapshot that
  /// progress() serves to other threads.
  void PublishProgress() EXCLUDES(progress_mu_);

  DbInstanceSimulator* simulator_;
  Advisor* advisor_;
  EventSessionOptions options_;
  SafetyController safety_;
  std::vector<EventRecord> records_;
  std::vector<PendingEval> pending_;  // min-heap on (delivery, seq)
  uint64_t launched_ = 0;
  int completed_ = 0;
  double clock_seconds_ = 0.0;
  bool advisor_exhausted_ = false;
  bool halted_ = false;

  /// Guards only the published snapshot. The loop state above is owned by
  /// the thread inside Run()/Resume() and deliberately unguarded; this
  /// narrow hand-off is the session's entire cross-thread surface.
  mutable Mutex progress_mu_;
  EventSessionProgress progress_ GUARDED_BY(progress_mu_);
};

}  // namespace restune

#endif  // RESTUNE_TUNER_EVENT_SESSION_H_
