#include "tuner/event_session.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "common/contracts.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace restune {

namespace {

struct EventSessionMetrics {
  obs::Counter* launches;
  obs::Counter* completions;
  obs::Counter* watchdog_kills;
  obs::Counter* frozen_probes;
  obs::Counter* advisor_failures;
  obs::Counter* checkpoints;
  obs::Counter* resumes;
  obs::Gauge* in_flight;

  static EventSessionMetrics* Get() {
    static EventSessionMetrics* m = [] {
      auto* registry = obs::MetricsRegistry::Global();
      // restune-lint: allow(naked-new) -- intentional leak, handle cache
      auto* metrics = new EventSessionMetrics();
      metrics->launches =
          registry->GetCounter("restune_event_launches_total");
      metrics->completions =
          registry->GetCounter("restune_event_completions_total");
      metrics->watchdog_kills =
          registry->GetCounter("restune_event_watchdog_kills_total");
      metrics->frozen_probes =
          registry->GetCounter("restune_event_frozen_probes_total");
      metrics->advisor_failures =
          registry->GetCounter("restune_event_advisor_failures_total");
      metrics->checkpoints =
          registry->GetCounter("restune_event_checkpoints_total");
      metrics->resumes = registry->GetCounter("restune_event_resumes_total");
      metrics->in_flight = registry->GetGauge("restune_event_in_flight");
      return metrics;
    }();
    return m;
  }
};

std::string JsonVector(const Vector& v) {
  std::string out = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    out += StringPrintf("%.17g", v[i]);
  }
  out += ']';
  return out;
}

/// Emits a `{"type":"event",...}` line into the trace (no-op when tracing
/// is disabled). `body` is the comma-joined tail of the JSON object.
void TraceEvent(const std::string& body) {
  obs::Tracer* tracer = obs::Tracer::Global();
  if (!tracer->enabled()) return;
  tracer->RecordLine("{\"type\":\"event\"," + body + "}");
}

}  // namespace

EventTuningSession::EventTuningSession(DbInstanceSimulator* simulator,
                                       Advisor* advisor,
                                       EventSessionOptions options)
    : simulator_(simulator),
      advisor_(advisor),
      options_(options),
      safety_(options.safety) {}

Result<SessionResult> EventTuningSession::Run() { return RunInternal(nullptr); }

Result<SessionResult> EventTuningSession::Resume() {
  if (options_.fault.checkpoint_path.empty()) {
    return Status::FailedPrecondition(
        "Resume requires fault.checkpoint_path to be set");
  }
  RESTUNE_ASSIGN_OR_RETURN(
      const EventSessionCheckpoint checkpoint,
      LoadEventSessionCheckpointFile(options_.fault.checkpoint_path));
  return RunInternal(&checkpoint);
}

double EventTuningSession::WatchdogDeadline() const {
  return options_.watchdog_deadline_seconds > 0.0
             ? options_.watchdog_deadline_seconds
             : options_.watchdog_multiplier *
                   simulator_->options().replay_seconds;
}

std::vector<Vector> EventTuningSession::PendingThetas() const {
  // Seq order, not heap order: the penalization set must be identical on
  // every replay regardless of how the heap happens to be laid out.
  std::vector<const PendingEval*> sorted;
  sorted.reserve(pending_.size());
  for (const PendingEval& eval : pending_) sorted.push_back(&eval);
  std::sort(sorted.begin(), sorted.end(),
            [](const PendingEval* a, const PendingEval* b) {
              return a->seq < b->seq;
            });
  std::vector<Vector> thetas;
  thetas.reserve(sorted.size());
  for (const PendingEval* eval : sorted) thetas.push_back(eval->theta);
  return thetas;
}

void EventTuningSession::PushPending(PendingEval eval) {
  auto later = [](const PendingEval& a, const PendingEval& b) {
    if (a.delivery_seconds != b.delivery_seconds) {
      return a.delivery_seconds > b.delivery_seconds;
    }
    return a.seq > b.seq;
  };
  pending_.push_back(std::move(eval));
  std::push_heap(pending_.begin(), pending_.end(), later);
  EventSessionMetrics::Get()->in_flight->Set(
      static_cast<double>(pending_.size()));
}

EventTuningSession::PendingEval EventTuningSession::PopPending() {
  auto later = [](const PendingEval& a, const PendingEval& b) {
    if (a.delivery_seconds != b.delivery_seconds) {
      return a.delivery_seconds > b.delivery_seconds;
    }
    return a.seq > b.seq;
  };
  std::pop_heap(pending_.begin(), pending_.end(), later);
  PendingEval eval = std::move(pending_.back());
  pending_.pop_back();
  EventSessionMetrics::Get()->in_flight->Set(
      static_cast<double>(pending_.size()));
  return eval;
}

Result<bool> EventTuningSession::Launch(EvaluationSupervisor* supervisor) {
  RESTUNE_TRACE_SPAN("session.launch");
  SessionMode mode = safety_.mode();
  bool frozen = mode == SessionMode::kFrozen;
  Vector theta;
  if (frozen) {
    theta = safety_.safe_theta();
    EventSessionMetrics::Get()->frozen_probes->Add();
  } else {
    if (mode == SessionMode::kConstrained) {
      advisor_->SetTrustRegion(safety_.safe_theta(), safety_.trust_radius());
    } else {
      advisor_->ClearTrustRegion();
    }
    Result<Vector> suggestion = advisor_->SuggestNextAsync(PendingThetas());
    if (!suggestion.ok()) {
      if (suggestion.status().code() == StatusCode::kOutOfRange) {
        return false;  // advisor exhausted (grid search ran out)
      }
      // The surrogate failed to fit — drop to frozen and probe the safe
      // config instead of propagating: an always-on loop must keep serving.
      EventSessionMetrics::Get()->advisor_failures->Add();
      mode = safety_.OnAdvisorFailure();
      frozen = true;
      theta = safety_.safe_theta();
      EventSessionMetrics::Get()->frozen_probes->Add();
    } else {
      theta = *suggestion;
      RESTUNE_DCHECK_ALL_FINITE(theta);
    }
  }

  const uint64_t seq = launched_++;
  EventRecord launch;
  launch.kind = EventKind::kLaunch;
  launch.seq = seq;
  launch.theta = theta;
  launch.frozen = frozen;
  launch.mode = mode;
  launch.sla_violated = safety_.sla_violated();
  records_.push_back(launch);
  EventSessionMetrics::Get()->launches->Add();
  {
    std::string body = StringPrintf(
        "\"event\":\"launch\",\"seq\":%llu,\"mode\":\"%s\","
        "\"sla_violated\":%d,\"frozen\":%d",
        static_cast<unsigned long long>(seq), SessionModeName(mode),
        launch.sla_violated ? 1 : 0, frozen ? 1 : 0);
    body += ",\"theta\":" + JsonVector(theta);
    if (mode != SessionMode::kHealthy) {
      body += ",\"trust_center\":" + JsonVector(safety_.safe_theta());
      body += StringPrintf(",\"trust_radius\":%.17g", safety_.trust_radius());
    }
    TraceEvent(body);
  }

  // Eager evaluation: the outcome is computed at launch (RNG consumed in
  // launch order — thread-count invariant) but delivered later, when the
  // session clock reaches delivery_seconds.
  RESTUNE_ASSIGN_OR_RETURN(const SupervisedEvaluation supervised,
                           supervisor->Evaluate(theta));
  PendingEval pend;
  pend.seq = seq;
  pend.theta = theta;
  pend.attempts = supervised.attempts;
  pend.backoff_seconds = supervised.backoff_seconds;
  pend.elapsed_seconds = supervised.elapsed_seconds;
  if (supervised.outcome.ok()) {
    pend.observation = supervised.outcome.observation();
  } else {
    pend.failed = true;
    pend.fault = supervised.outcome.fault().kind;
  }
  // Watchdog: a slot still pending at its deadline is cancelled. Stalls
  // never complete on their own, so they are always cut at the deadline;
  // anything else that outlived it is reclassified as a timeout — even a
  // "successful" result, which by then nobody is waiting for.
  const double deadline = WatchdogDeadline();
  if (pend.fault == FaultKind::kStall || pend.elapsed_seconds > deadline) {
    pend.watchdog_killed = true;
    pend.failed = true;
    if (pend.fault != FaultKind::kStall) pend.fault = FaultKind::kTimeout;
    pend.elapsed_seconds = deadline;
    EventSessionMetrics::Get()->watchdog_kills->Add();
  }
  pend.delivery_seconds = clock_seconds_ + pend.elapsed_seconds;
  PushPending(std::move(pend));
  PublishProgress();
  return true;
}

EventSessionProgress EventTuningSession::progress() const {
  MutexLock lock(&progress_mu_);
  return progress_;
}

void EventTuningSession::PublishProgress() {
  MutexLock lock(&progress_mu_);
  progress_.completed = completed_;
  progress_.launched = launched_;
  progress_.in_flight = pending_.size();
  progress_.clock_seconds = clock_seconds_;
  progress_.mode = safety_.mode();
}

void EventTuningSession::ApplyCompletion(SessionResult* result, int iteration,
                                         const PendingEval& eval,
                                         bool feasible) {
  IterationRecord rec;
  rec.iteration = iteration;
  rec.failed = eval.failed;
  rec.fault = eval.fault;
  rec.attempts = eval.attempts;
  rec.backoff_seconds = eval.backoff_seconds;
  rec.timing = advisor_->last_timing();
  rec.replay_seconds = simulator_->options().replay_seconds;
  if (eval.failed) {
    rec.observation.theta = eval.theta;
    rec.feasible = false;
    ++result->failed_iterations;
  } else {
    rec.observation = eval.observation;
    rec.feasible = feasible;
    if (feasible && rec.observation.res < result->best_feasible_res) {
      result->best_feasible_res = rec.observation.res;
      result->best_theta = rec.observation.theta;
      result->best_iteration = iteration;
    }
  }
  rec.best_feasible_res = result->best_feasible_res;
  result->total_retries += eval.attempts - 1;
  result->history.push_back(rec);
}

Status EventTuningSession::Ingest(SessionResult* result) {
  RESTUNE_TRACE_SPAN("session.ingest");
  PendingEval eval = PopPending();
  clock_seconds_ = std::max(clock_seconds_, eval.delivery_seconds);
  const int iteration = ++completed_;
  EventSessionMetrics::Get()->completions->Add();

  if (eval.failed) {
    if (options_.fault.failure_aware_learning) {
      EvaluationFault fault;
      fault.kind = eval.fault;
      fault.elapsed_seconds = eval.elapsed_seconds;
      fault.message = eval.watchdog_killed
                          ? "watchdog cancelled pending slot"
                          : "supervised evaluation failed";
      RESTUNE_RETURN_IF_ERROR(advisor_->ObserveFailure(eval.theta, fault));
    }
  } else {
    RESTUNE_RETURN_IF_ERROR(advisor_->Observe(eval.observation));
  }
  const bool feasible =
      !eval.failed &&
      result->sla.IsFeasible(eval.observation, options_.sla_tolerance);
  const bool sla_ok =
      !eval.failed &&
      result->sla.IsFeasible(eval.observation,
                             options_.safety.monitor_tolerance);
  const SessionMode before = safety_.mode();
  const SessionMode after =
      safety_.OnCompletion(eval.theta, eval.failed, feasible, sla_ok,
                           eval.observation.res);

  EventRecord complete;
  complete.kind = EventKind::kComplete;
  complete.seq = eval.seq;
  complete.failed = eval.failed;
  complete.observation = eval.failed ? Observation{} : eval.observation;
  complete.fault = eval.fault;
  complete.attempts = eval.attempts;
  complete.backoff_seconds = eval.backoff_seconds;
  complete.elapsed_seconds = eval.elapsed_seconds;
  complete.watchdog_killed = eval.watchdog_killed;
  complete.mode_after = after;
  complete.sla_violated_after = safety_.sla_violated();
  records_.push_back(complete);

  TraceEvent(StringPrintf(
      "\"event\":\"complete\",\"seq\":%llu,\"iteration\":%d,\"failed\":%d,"
      "\"fault\":\"%s\",\"watchdog_killed\":%d,\"feasible\":%d,"
      "\"mode_after\":\"%s\",\"sla_violated_after\":%d",
      static_cast<unsigned long long>(eval.seq), iteration,
      eval.failed ? 1 : 0, FaultKindName(eval.fault),
      eval.watchdog_killed ? 1 : 0, feasible ? 1 : 0, SessionModeName(after),
      complete.sla_violated_after ? 1 : 0));
  if (after != before) {
    TraceEvent(StringPrintf(
        "\"event\":\"mode_transition\",\"from\":\"%s\",\"to\":\"%s\","
        "\"seq\":%llu",
        SessionModeName(before), SessionModeName(after),
        static_cast<unsigned long long>(eval.seq)));
  }

  ApplyCompletion(result, iteration, eval, feasible);
  PublishProgress();
  return Status::OK();
}

Status EventTuningSession::WriteCheckpoint(
    const SessionResult& result, const EvaluationSupervisor& supervisor) {
  EventSessionCheckpoint checkpoint;
  checkpoint.launched = launched_;
  checkpoint.completed = completed_;
  checkpoint.clock_seconds = clock_seconds_;
  checkpoint.default_observation = result.default_observation;
  checkpoint.sla = result.sla;
  checkpoint.records = records_;
  // Pending evaluations in seq order (the heap's layout is an
  // implementation detail that must not leak into checkpoint bytes).
  std::vector<const PendingEval*> sorted;
  sorted.reserve(pending_.size());
  for (const PendingEval& eval : pending_) sorted.push_back(&eval);
  std::sort(sorted.begin(), sorted.end(),
            [](const PendingEval* a, const PendingEval* b) {
              return a->seq < b->seq;
            });
  for (const PendingEval* eval : sorted) {
    InFlightRecord record;
    record.seq = eval->seq;
    record.delivery_seconds = eval->delivery_seconds;
    record.failed = eval->failed;
    record.observation = eval->observation;
    record.fault = eval->fault;
    record.attempts = eval->attempts;
    record.backoff_seconds = eval->backoff_seconds;
    record.elapsed_seconds = eval->elapsed_seconds;
    record.watchdog_killed = eval->watchdog_killed;
    checkpoint.in_flight.push_back(std::move(record));
  }
  checkpoint.simulator_state = simulator_->ExportState();
  checkpoint.supervisor_rng = supervisor.rng_state();
  // Count this write before snapshotting so the stored totals include it.
  EventSessionMetrics::Get()->checkpoints->Add();
  checkpoint.metrics = obs::MetricsRegistry::Global()->Counters();
  TraceEvent(StringPrintf("\"event\":\"checkpoint\",\"completed\":%d",
                          completed_));
  return SaveEventSessionCheckpointFile(checkpoint,
                                        options_.fault.checkpoint_path);
}

Result<SessionResult> EventTuningSession::RunInternal(
    const EventSessionCheckpoint* resume_from) {
  EvaluationSupervisor supervisor(simulator_, options_.fault.retry,
                                  options_.fault.supervisor_seed);
  SessionResult result;
  records_.clear();
  pending_.clear();
  launched_ = 0;
  completed_ = 0;
  clock_seconds_ = 0.0;
  advisor_exhausted_ = false;
  halted_ = false;
  safety_ = SafetyController(options_.safety);

  if (resume_from == nullptr) {
    // The default-configuration evaluation anchors the SLA and the safety
    // baseline; it must not die to a random injected fault.
    RESTUNE_ASSIGN_OR_RETURN(
        const SupervisedEvaluation bootstrap,
        supervisor.Evaluate(simulator_->knob_space().DefaultTheta(),
                            /*retry_any_fault=*/true));
    if (!bootstrap.outcome.ok()) {
      return Status::Aborted(
          "default configuration evaluation failed (" +
          std::string(FaultKindName(bootstrap.outcome.fault().kind)) +
          "): " + bootstrap.outcome.fault().message);
    }
    result.default_observation = bootstrap.outcome.observation();
    result.sla = DbInstanceSimulator::ConstraintsFromDefault(
        result.default_observation);
    result.best_feasible_res = result.default_observation.res;
    result.best_theta = result.default_observation.theta;
    result.best_iteration = 0;
    safety_.SetBaseline(result.default_observation.theta,
                        result.default_observation.res);
    RESTUNE_RETURN_IF_ERROR(
        advisor_->Begin(result.default_observation, result.sla));
  } else {
    // Resume: rebuild advisor AND safety controller by replaying the
    // totally ordered event log. Every replayed suggestion is verified
    // bitwise against the recorded θ and every replayed ladder transition
    // against the recorded mode — a divergent reconstruction fails loudly
    // instead of silently forking the run.
    result.resumed = true;
    EventSessionMetrics::Get()->resumes->Add();
    result.default_observation = resume_from->default_observation;
    result.sla = resume_from->sla;
    result.best_feasible_res = result.default_observation.res;
    result.best_theta = result.default_observation.theta;
    result.best_iteration = 0;
    safety_.SetBaseline(result.default_observation.theta,
                        result.default_observation.res);
    RESTUNE_RETURN_IF_ERROR(
        advisor_->Begin(result.default_observation, result.sla));

    // seq → (theta, frozen) of launches not yet matched by a completion.
    // std::map keeps seq order — the pending-penalization order.
    std::map<uint64_t, Vector> outstanding;
    int replayed_completions = 0;
    for (const EventRecord& record : resume_from->records) {
      if (record.kind == EventKind::kLaunch) {
        // An advisor failure mid-run froze the ladder without a completion
        // event; mirror it so the replayed mode matches.
        if (record.mode == SessionMode::kFrozen &&
            safety_.mode() != SessionMode::kFrozen && record.frozen) {
          safety_.OnAdvisorFailure();
        }
        if (record.mode != safety_.mode()) {
          return Status::FailedPrecondition(
              "checkpoint replay diverged at launch " +
              std::to_string(record.seq) + ": recorded mode '" +
              SessionModeName(record.mode) + "', replayed '" +
              SessionModeName(safety_.mode()) + "'");
        }
        Vector theta;
        if (record.frozen) {
          // Frozen probes never consulted the advisor; replay must not
          // consume advisor RNG for them either.
          theta = safety_.safe_theta();
        } else {
          if (record.mode == SessionMode::kConstrained) {
            advisor_->SetTrustRegion(safety_.safe_theta(),
                                     safety_.trust_radius());
          } else {
            advisor_->ClearTrustRegion();
          }
          std::vector<Vector> pending_thetas;
          pending_thetas.reserve(outstanding.size());
          for (const auto& [seq, t] : outstanding) pending_thetas.push_back(t);
          RESTUNE_ASSIGN_OR_RETURN(theta,
                                   advisor_->SuggestNextAsync(pending_thetas));
          RESTUNE_DCHECK_ALL_FINITE(theta);
        }
        bool matches = theta.size() == record.theta.size();
        for (size_t c = 0; matches && c < theta.size(); ++c) {
          matches = theta[c] == record.theta[c];
        }
        if (!matches) {
          return Status::FailedPrecondition(
              "checkpoint replay diverged at launch " +
              std::to_string(record.seq) +
              "; advisor was not reconstructed with the original seeds");
        }
        outstanding.emplace(record.seq, std::move(theta));
        continue;
      }
      // Completion record.
      auto it = outstanding.find(record.seq);
      if (it == outstanding.end()) {
        return Status::FailedPrecondition(
            "checkpoint completion " + std::to_string(record.seq) +
            " has no matching launch");
      }
      const Vector theta = it->second;
      outstanding.erase(it);
      if (record.failed) {
        if (options_.fault.failure_aware_learning) {
          EvaluationFault fault;
          fault.kind = record.fault;
          fault.elapsed_seconds = record.elapsed_seconds;
          fault.message = "replayed from checkpoint";
          RESTUNE_RETURN_IF_ERROR(advisor_->ObserveFailure(theta, fault));
        }
      } else {
        RESTUNE_RETURN_IF_ERROR(advisor_->Observe(record.observation));
      }
      const bool feasible =
          !record.failed &&
          result.sla.IsFeasible(record.observation, options_.sla_tolerance);
      const bool sla_ok =
          !record.failed &&
          result.sla.IsFeasible(record.observation,
                                options_.safety.monitor_tolerance);
      const SessionMode after = safety_.OnCompletion(
          theta, record.failed, feasible, sla_ok, record.observation.res);
      if (after != record.mode_after ||
          safety_.sla_violated() != record.sla_violated_after) {
        return Status::FailedPrecondition(
            "checkpoint replay diverged at completion " +
            std::to_string(record.seq) +
            ": safety ladder did not retrace the recorded transitions");
      }
      PendingEval eval;
      eval.seq = record.seq;
      eval.theta = theta;
      eval.failed = record.failed;
      eval.observation = record.observation;
      eval.fault = record.fault;
      eval.attempts = record.attempts;
      eval.backoff_seconds = record.backoff_seconds;
      eval.elapsed_seconds = record.elapsed_seconds;
      eval.watchdog_killed = record.watchdog_killed;
      ApplyCompletion(&result, ++replayed_completions, eval, feasible);
    }
    if (replayed_completions != resume_from->completed) {
      return Status::FailedPrecondition(
          "checkpoint completion count does not match its event log");
    }
    // Re-materialize the pending queue: outcomes from the checkpoint, θ
    // from the unmatched launches. The two sets must agree exactly.
    if (outstanding.size() != resume_from->in_flight.size()) {
      return Status::FailedPrecondition(
          "checkpoint in-flight records do not match unmatched launches");
    }
    for (const InFlightRecord& record : resume_from->in_flight) {
      auto it = outstanding.find(record.seq);
      if (it == outstanding.end()) {
        return Status::FailedPrecondition(
            "checkpoint in-flight record " + std::to_string(record.seq) +
            " has no matching launch");
      }
      PendingEval eval;
      eval.seq = record.seq;
      eval.theta = it->second;
      eval.delivery_seconds = record.delivery_seconds;
      eval.failed = record.failed;
      eval.observation = record.observation;
      eval.fault = record.fault;
      eval.attempts = record.attempts;
      eval.backoff_seconds = record.backoff_seconds;
      eval.elapsed_seconds = record.elapsed_seconds;
      eval.watchdog_killed = record.watchdog_killed;
      PushPending(std::move(eval));
    }
    records_ = resume_from->records;
    launched_ = resume_from->launched;
    completed_ = resume_from->completed;
    clock_seconds_ = resume_from->clock_seconds;
    simulator_->RestoreState(resume_from->simulator_state);
    supervisor.set_rng_state(resume_from->supervisor_rng);
    // Replay inflated the live counters; rewind to the checkpointed totals
    // so a resumed session reports the same numbers as the uninterrupted
    // one.
    if (!resume_from->metrics.empty()) {
      obs::MetricsRegistry::Global()->RestoreCounters(resume_from->metrics);
    }
  }
  PublishProgress();  // a poller sees restored state before the first launch

  // The halt hook only applies to completions ingested by THIS process —
  // a resumed run past the halt point ignores it.
  int halt_at = options_.halt_after_completions;
  if (resume_from != nullptr && halt_at > 0 && halt_at <= completed_) {
    halt_at = 0;
  }

  while (completed_ < options_.max_iterations) {
    RESTUNE_TRACE_SPAN("session.iteration");
    while (!advisor_exhausted_ &&
           pending_.size() < static_cast<size_t>(std::max(
                                 1, options_.max_in_flight)) &&
           launched_ < static_cast<uint64_t>(options_.max_iterations)) {
      RESTUNE_ASSIGN_OR_RETURN(const bool launched, Launch(&supervisor));
      if (!launched) {
        advisor_exhausted_ = true;
        break;
      }
    }
    if (pending_.empty()) break;  // advisor exhausted and queue drained
    RESTUNE_RETURN_IF_ERROR(Ingest(&result));

    const bool halt = halt_at > 0 && completed_ >= halt_at;
    if (!options_.fault.checkpoint_path.empty() &&
        options_.fault.checkpoint_period > 0 &&
        (halt || completed_ % options_.fault.checkpoint_period == 0)) {
      RESTUNE_RETURN_IF_ERROR(WriteCheckpoint(result, supervisor));
    }
    if (halt) {
      halted_ = true;
      return result;
    }
  }
  if (!options_.fault.checkpoint_path.empty() && !records_.empty()) {
    RESTUNE_RETURN_IF_ERROR(WriteCheckpoint(result, supervisor));
  }
  return result;
}

}  // namespace restune
