#include "tuner/cdbtune_advisor.h"

#include <cmath>

#include "tuner/stopwatch.h"

namespace restune {

CdbTuneAdvisor::CdbTuneAdvisor(size_t dim, CdbTuneAdvisorOptions options)
    : dim_(dim), options_(options) {}

Vector CdbTuneAdvisor::NormalizedState(const Observation& obs) const {
  // Normalize internal metrics by the default-config values so state
  // components are O(1) regardless of instance size.
  Vector state(initial_.internals.size(), 0.0);
  for (size_t i = 0; i < state.size(); ++i) {
    const double base = std::fabs(initial_.internals[i]) > 1e-9
                            ? std::fabs(initial_.internals[i])
                            : 1.0;
    const double v = i < obs.internals.size() ? obs.internals[i] : 0.0;
    state[i] = std::tanh(v / base - 1.0);  // squash outliers
  }
  return state;
}

double CdbTuneAdvisor::Reward(const Observation& obs) const {
  // CDBTune reward with resource substituted for latency (lower is better).
  const double d0 = (initial_.res - obs.res) / std::max(initial_.res, 1e-9);
  const double dp =
      (previous_.res - obs.res) / std::max(previous_.res, 1e-9);
  double r;
  if (d0 > 0) {
    r = (std::pow(1.0 + d0, 2.0) - 1.0) * std::fabs(1.0 + dp);
  } else {
    r = -(std::pow(1.0 - d0, 2.0) - 1.0) * std::fabs(1.0 - dp);
  }
  const bool sla_ok = sla_.IsFeasible(obs);
  if (r > 0 && !sla_ok) return 0.0;  // better resource but SLA broken
  if (r < 0 && sla_ok) return 0.0;   // worse resource but SLA still held
  return r;
}

Status CdbTuneAdvisor::Begin(const Observation& default_observation,
                             const SlaConstraints& sla) {
  if (default_observation.internals.empty()) {
    return Status::InvalidArgument(
        "CDBTune needs internal metrics in observations");
  }
  sla_ = sla;
  initial_ = default_observation;
  previous_ = default_observation;
  previous_state_ = NormalizedState(default_observation);
  DdpgOptions ddpg = options_.ddpg;
  ddpg.seed = options_.seed;
  agent_ = std::make_unique<DdpgAgent>(previous_state_.size(), dim_, ddpg);
  has_previous_ = true;
  return Status::OK();
}

Result<Vector> CdbTuneAdvisor::SuggestNext() {
  if (!agent_) {
    return Status::FailedPrecondition("call Begin first");
  }
  StopWatch watch;
  last_action_ = agent_->ActWithNoise(previous_state_);
  timing_.recommendation_s = watch.Seconds();
  return last_action_;
}

Status CdbTuneAdvisor::Observe(const Observation& observation) {
  if (!agent_ || last_action_.empty()) {
    return Status::FailedPrecondition("Observe without a pending suggestion");
  }
  StopWatch watch;
  last_reward_ = Reward(observation);
  const Vector next_state = NormalizedState(observation);
  agent_->Observe({previous_state_, last_action_, last_reward_, next_state});
  previous_state_ = next_state;
  previous_ = observation;
  timing_.model_update_s = watch.Seconds();
  return Status::OK();
}

}  // namespace restune
