#ifndef RESTUNE_TUNER_HARNESS_H_
#define RESTUNE_TUNER_HARNESS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dbsim/simulator.h"
#include "meta/data_repository.h"
#include "meta/meta_feature.h"
#include "sqlgen/generator.h"
#include "tuner/session.h"

namespace restune {

/// The tuning methods compared throughout the paper's evaluation.
enum class MethodKind {
  kResTune,
  kResTuneNoMl,        // ResTune-w/o-ML: constrained BO, no repository
  kResTuneNoWorkload,  // ablation: LHS init instead of characterization
  kOtterTune,          // OtterTune-w-Con
  kCdbTune,            // CDBTune-w-Con
  kITuned,             // unconstrained EI
  kGridSearch,
};

const char* MethodName(MethodKind method);

/// Shared knobs of one experiment run.
struct ExperimentConfig {
  ResourceKind resource = ResourceKind::kCpu;
  int iterations = 200;
  /// The paper accepts 5% measurement deviation when evaluating the
  /// performance metrics (Section 7, "Setting").
  double sla_tolerance = 0.05;
  double noise_std = 0.01;
  double buffer_pool_fix_gb = 0.0;
  uint64_t seed = 1;
  /// Fault injection for the target simulator (off by default). Repository
  /// collection always runs fault-free — history tasks model the paper's
  /// curated meta-data, not a flaky production trace.
  FaultInjectionOptions faults;
  /// Session-level fault tolerance (retry policy, failure-aware learning,
  /// checkpointing).
  SessionFaultOptions fault_tolerance;
  /// Forwarded to SessionOptions::max_consecutive_infeasible (0 = off).
  int max_consecutive_infeasible = 0;
};

/// Trains the workload characterizer on labeled queries sampled from every
/// workload's SQL generator — the classifier every experiment shares.
WorkloadCharacterizer TrainDefaultCharacterizer(uint64_t seed = 7);

/// Meta-feature of a workload: averaged predicted cost-class distribution
/// over `num_queries` sampled queries (paper Section 6.2).
Vector ComputeMetaFeature(const WorkloadCharacterizer& characterizer,
                          const WorkloadProfile& workload,
                          size_t num_queries = 200, uint64_t seed = 11);

/// Collects one historical task's meta-data: LHS observations of
/// (workload, hardware) under `space`, plus its meta-feature.
TuningTask CollectHistoryTask(const KnobSpace& space,
                              const HardwareSpec& hardware,
                              const WorkloadProfile& workload,
                              const WorkloadCharacterizer& characterizer,
                              const ExperimentConfig& config,
                              size_t num_observations);

/// The 17 distinct workloads behind the paper's 34-task repository
/// (Section 7, "Data Repository").
std::vector<WorkloadProfile> RepositoryWorkloads();

/// Builds the paper's repository: `RepositoryWorkloads()` × instances A and
/// B (34 tasks) observed under `space` via LHS.
DataRepository BuildPaperRepository(const KnobSpace& space,
                                    const WorkloadCharacterizer& characterizer,
                                    const ExperimentConfig& config,
                                    size_t observations_per_task = 80);

/// Materials a method needs besides the simulator: base-learners for
/// ResTune, raw tasks for OtterTune's mapping, and the target meta-feature.
struct MethodInputs {
  std::vector<BaseLearner> base_learners;
  std::vector<TuningTask> repository_tasks;
  Vector target_meta_feature;
};

/// Runs one tuning method against a simulator for `config.iterations`
/// evaluations and returns the session trace.
Result<SessionResult> RunMethod(MethodKind method,
                                DbInstanceSimulator* simulator,
                                const MethodInputs& inputs,
                                const ExperimentConfig& config);

/// Adjusts a workload's client request rate to what the given hardware can
/// actually absorb under the default configuration (85% of default
/// capacity, or the original rate if lower). This mirrors the paper's
/// methodology — "the request rates ... are set for benchmark workloads by
/// observing throughput under DBA's default configuration" — and prevents
/// small instances from being saturated into infeasibility.
WorkloadProfile AdaptRequestRate(const WorkloadProfile& workload,
                                 const HardwareSpec& hardware,
                                 double buffer_pool_fix_gb = 0.0);

/// Convenience: builds a simulator for (space, instance label, workload)
/// under `config`, with the request rate adapted to the instance.
Result<DbInstanceSimulator> MakeSimulator(const KnobSpace& space,
                                          char instance_label,
                                          const WorkloadProfile& workload,
                                          const ExperimentConfig& config);

/// Reads an iteration-count scale factor from the RESTUNE_BENCH_ITERS
/// environment variable (absolute iteration override for quick runs);
/// returns `default_iters` when unset.
int BenchIterations(int default_iters);

}  // namespace restune

#endif  // RESTUNE_TUNER_HARNESS_H_
