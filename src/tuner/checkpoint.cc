#include "tuner/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace restune {
namespace {

constexpr const char* kMagic = "restune-checkpoint";
constexpr int kVersion = 1;
constexpr const char* kEventMagic = "restune-event-checkpoint";
constexpr int kEventVersion = 1;

Status ReadSessionModeToken(std::istream* in, SessionMode* mode) {
  int raw = 0;
  if (!(*in >> raw) || raw < 0 || raw > static_cast<int>(SessionMode::kFrozen)) {
    return Status::IoError("bad session mode in checkpoint");
  }
  *mode = static_cast<SessionMode>(raw);
  return Status::OK();
}

Status ReadFaultKindToken(std::istream* in, FaultKind* kind) {
  int raw = 0;
  if (!(*in >> raw) || raw < 0 || raw >= static_cast<int>(kNumFaultKinds)) {
    return Status::IoError("bad fault kind in checkpoint");
  }
  *kind = static_cast<FaultKind>(raw);
  return Status::OK();
}

Status ExpectTag(std::istream* in, const std::string& want) {
  std::string tag;
  if (!(*in >> tag)) {
    return Status::IoError("checkpoint truncated: expected '" + want + "'");
  }
  if (tag != want) {
    return Status::IoError("checkpoint corrupt: expected '" + want +
                            "', found '" + tag + "'");
  }
  return Status::OK();
}

}  // namespace

void WriteRngState(std::ostream* out, const RngState& state) {
  for (uint64_t word : state.s) *out << word << ' ';
  *out << (state.has_cached_gaussian ? 1 : 0) << ' '
       << state.cached_gaussian << '\n';
}

Status ReadRngState(std::istream* in, RngState* state) {
  int has_cached = 0;
  for (uint64_t& word : state->s) {
    if (!(*in >> word)) return Status::IoError("bad rng state in checkpoint");
  }
  if (!(*in >> has_cached >> state->cached_gaussian)) {
    return Status::IoError("bad rng state in checkpoint");
  }
  state->has_cached_gaussian = has_cached != 0;
  return Status::OK();
}

void WriteVector(std::ostream* out, const Vector& v) {
  *out << v.size();
  for (double x : v) *out << ' ' << x;
  *out << '\n';
}

Status ReadVector(std::istream* in, Vector* v) {
  size_t n = 0;
  if (!(*in >> n)) return Status::IoError("bad vector in checkpoint");
  if (n > (1u << 24)) {
    return Status::IoError("implausible vector size in checkpoint");
  }
  v->assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (!(*in >> (*v)[i])) return Status::IoError("bad vector in checkpoint");
  }
  return Status::OK();
}

void WriteObservation(std::ostream* out, const Observation& obs) {
  *out << obs.res << ' ' << obs.tps << ' ' << obs.lat << '\n';
  WriteVector(out, obs.theta);
  WriteVector(out, obs.internals);
}

Status ReadObservation(std::istream* in, Observation* obs) {
  if (!(*in >> obs->res >> obs->tps >> obs->lat)) {
    return Status::IoError("bad observation in checkpoint");
  }
  RESTUNE_RETURN_IF_ERROR(ReadVector(in, &obs->theta));
  return ReadVector(in, &obs->internals);
}

void WriteSessionEvent(std::ostream* out, const SessionEvent& event) {
  *out << "event " << event.iteration << ' ' << (event.failed ? 1 : 0) << ' '
       << static_cast<int>(event.fault) << ' ' << event.attempts << ' '
       << event.backoff_seconds << '\n';
  *out << "theta ";
  WriteVector(out, event.theta);
  if (!event.failed) {
    *out << "obs\n";
    WriteObservation(out, event.observation);
  }
}

Status ReadSessionEvent(std::istream* in, SessionEvent* event) {
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "event"));
  int failed = 0;
  int fault = 0;
  if (!(*in >> event->iteration >> failed >> fault >> event->attempts >>
        event->backoff_seconds)) {
    return Status::IoError("bad event in checkpoint");
  }
  if (fault < 0 || fault >= static_cast<int>(kNumFaultKinds)) {
    return Status::IoError("bad fault kind in checkpoint");
  }
  event->failed = failed != 0;
  event->fault = static_cast<FaultKind>(fault);
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "theta"));
  RESTUNE_RETURN_IF_ERROR(ReadVector(in, &event->theta));
  if (!event->failed) {
    RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "obs"));
    RESTUNE_RETURN_IF_ERROR(ReadObservation(in, &event->observation));
  }
  return Status::OK();
}

void WriteEventRecord(std::ostream* out, const EventRecord& record) {
  if (record.kind == EventKind::kLaunch) {
    *out << "launch " << record.seq << ' ' << (record.frozen ? 1 : 0) << ' '
         << static_cast<int>(record.mode) << ' '
         << (record.sla_violated ? 1 : 0) << '\n';
    *out << "theta ";
    WriteVector(out, record.theta);
    return;
  }
  *out << "complete " << record.seq << ' ' << (record.failed ? 1 : 0) << ' '
       << static_cast<int>(record.fault) << ' ' << record.attempts << ' '
       << record.backoff_seconds << ' ' << record.elapsed_seconds << ' '
       << (record.watchdog_killed ? 1 : 0) << ' '
       << static_cast<int>(record.mode_after) << ' '
       << (record.sla_violated_after ? 1 : 0) << '\n';
  if (!record.failed) {
    *out << "obs\n";
    WriteObservation(out, record.observation);
  }
}

Status ReadEventRecord(std::istream* in, EventRecord* record) {
  std::string tag;
  if (!(*in >> tag)) {
    return Status::IoError("checkpoint truncated: expected event record");
  }
  if (tag == "launch") {
    record->kind = EventKind::kLaunch;
    int frozen = 0;
    int violated = 0;
    if (!(*in >> record->seq >> frozen)) {
      return Status::IoError("bad launch record in checkpoint");
    }
    RESTUNE_RETURN_IF_ERROR(ReadSessionModeToken(in, &record->mode));
    if (!(*in >> violated)) {
      return Status::IoError("bad launch record in checkpoint");
    }
    record->frozen = frozen != 0;
    record->sla_violated = violated != 0;
    RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "theta"));
    return ReadVector(in, &record->theta);
  }
  if (tag != "complete") {
    return Status::IoError("checkpoint corrupt: expected event record, found '" +
                           tag + "'");
  }
  record->kind = EventKind::kComplete;
  int failed = 0;
  int watchdog = 0;
  int violated = 0;
  if (!(*in >> record->seq >> failed)) {
    return Status::IoError("bad completion record in checkpoint");
  }
  RESTUNE_RETURN_IF_ERROR(ReadFaultKindToken(in, &record->fault));
  if (!(*in >> record->attempts >> record->backoff_seconds >>
        record->elapsed_seconds >> watchdog)) {
    return Status::IoError("bad completion record in checkpoint");
  }
  RESTUNE_RETURN_IF_ERROR(ReadSessionModeToken(in, &record->mode_after));
  if (!(*in >> violated)) {
    return Status::IoError("bad completion record in checkpoint");
  }
  record->failed = failed != 0;
  record->watchdog_killed = watchdog != 0;
  record->sla_violated_after = violated != 0;
  if (!record->failed) {
    RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "obs"));
    RESTUNE_RETURN_IF_ERROR(ReadObservation(in, &record->observation));
  }
  return Status::OK();
}

void WriteInFlightRecord(std::ostream* out, const InFlightRecord& record) {
  *out << "inflight " << record.seq << ' ' << record.delivery_seconds << ' '
       << (record.failed ? 1 : 0) << ' ' << static_cast<int>(record.fault)
       << ' ' << record.attempts << ' ' << record.backoff_seconds << ' '
       << record.elapsed_seconds << ' ' << (record.watchdog_killed ? 1 : 0)
       << '\n';
  if (!record.failed) {
    *out << "obs\n";
    WriteObservation(out, record.observation);
  }
}

Status ReadInFlightRecord(std::istream* in, InFlightRecord* record) {
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "inflight"));
  int failed = 0;
  int watchdog = 0;
  if (!(*in >> record->seq >> record->delivery_seconds >> failed)) {
    return Status::IoError("bad in-flight record in checkpoint");
  }
  RESTUNE_RETURN_IF_ERROR(ReadFaultKindToken(in, &record->fault));
  if (!(*in >> record->attempts >> record->backoff_seconds >>
        record->elapsed_seconds >> watchdog)) {
    return Status::IoError("bad in-flight record in checkpoint");
  }
  record->failed = failed != 0;
  record->watchdog_killed = watchdog != 0;
  if (!record->failed) {
    RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "obs"));
    RESTUNE_RETURN_IF_ERROR(ReadObservation(in, &record->observation));
  }
  return Status::OK();
}

Status SaveSessionCheckpoint(const SessionCheckpoint& checkpoint,
                             std::ostream* out) {
  out->precision(17);  // exact double round-trip
  *out << kMagic << ' ' << kVersion << '\n';
  *out << "iteration " << checkpoint.iteration << '\n';
  *out << "default\n";
  WriteObservation(out, checkpoint.default_observation);
  *out << "sla " << checkpoint.sla.min_tps << ' ' << checkpoint.sla.max_lat
       << '\n';
  const DbInstanceSimulator::State& sim = checkpoint.simulator_state;
  *out << "simstate " << sim.num_evaluations << ' ' << sim.simulated_seconds
       << '\n';
  *out << "simrng ";
  WriteRngState(out, sim.rng);
  *out << "faultrng ";
  WriteRngState(out, sim.fault_rng);
  *out << "suprng ";
  WriteRngState(out, checkpoint.supervisor_rng);
  *out << "events " << checkpoint.events.size() << '\n';
  for (const SessionEvent& event : checkpoint.events) {
    WriteSessionEvent(out, event);
  }
  // Optional section (format is whitespace-token based, so metric names —
  // which never contain whitespace — round-trip as single tokens).
  if (!checkpoint.metrics.empty()) {
    *out << "metrics " << checkpoint.metrics.size() << '\n';
    for (const auto& [name, value] : checkpoint.metrics) {
      *out << name << ' ' << value << '\n';
    }
  }
  *out << "end\n";
  if (!out->good()) return Status::IoError("checkpoint write failed");
  return Status::OK();
}

Result<SessionCheckpoint> LoadSessionCheckpoint(std::istream* in) {
  std::string magic;
  int version = 0;
  if (!(*in >> magic >> version)) {
    return Status::IoError("not a restune checkpoint");
  }
  if (magic != kMagic) {
    return Status::IoError("not a restune checkpoint (magic '" + magic +
                            "')");
  }
  if (version != kVersion) {
    return Status::NotImplemented("unsupported checkpoint version " +
                                 std::to_string(version));
  }
  SessionCheckpoint checkpoint;
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "iteration"));
  if (!(*in >> checkpoint.iteration)) {
    return Status::IoError("bad iteration in checkpoint");
  }
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "default"));
  RESTUNE_RETURN_IF_ERROR(
      ReadObservation(in, &checkpoint.default_observation));
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "sla"));
  if (!(*in >> checkpoint.sla.min_tps >> checkpoint.sla.max_lat)) {
    return Status::IoError("bad sla in checkpoint");
  }
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "simstate"));
  DbInstanceSimulator::State& sim = checkpoint.simulator_state;
  if (!(*in >> sim.num_evaluations >> sim.simulated_seconds)) {
    return Status::IoError("bad simulator state in checkpoint");
  }
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "simrng"));
  RESTUNE_RETURN_IF_ERROR(ReadRngState(in, &sim.rng));
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "faultrng"));
  RESTUNE_RETURN_IF_ERROR(ReadRngState(in, &sim.fault_rng));
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "suprng"));
  RESTUNE_RETURN_IF_ERROR(ReadRngState(in, &checkpoint.supervisor_rng));
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "events"));
  size_t num_events = 0;
  if (!(*in >> num_events) || num_events > (1u << 24)) {
    return Status::IoError("bad event count in checkpoint");
  }
  checkpoint.events.reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    SessionEvent event;
    RESTUNE_RETURN_IF_ERROR(ReadSessionEvent(in, &event));
    checkpoint.events.push_back(std::move(event));
  }
  // "metrics" is optional (checkpoints written before the observability
  // layer end directly with "end").
  std::string tag;
  if (!(*in >> tag)) {
    return Status::IoError("checkpoint truncated: expected 'end'");
  }
  if (tag == "metrics") {
    size_t num_metrics = 0;
    if (!(*in >> num_metrics) || num_metrics > (1u << 20)) {
      return Status::IoError("bad metrics count in checkpoint");
    }
    checkpoint.metrics.reserve(num_metrics);
    for (size_t i = 0; i < num_metrics; ++i) {
      std::string name;
      int64_t value = 0;
      if (!(*in >> name >> value)) {
        return Status::IoError("bad metric entry in checkpoint");
      }
      checkpoint.metrics.emplace_back(std::move(name), value);
    }
    RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "end"));
  } else if (tag != "end") {
    return Status::IoError("checkpoint corrupt: expected 'end', found '" +
                           tag + "'");
  }
  return checkpoint;
}

Status SaveSessionCheckpointFile(const SessionCheckpoint& checkpoint,
                                 const std::string& path) {
  const std::string tmp = path + ".tmp";
  Status write_status = Status::OK();
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::NotFound("cannot open '" + tmp + "' for write");
    write_status = SaveSessionCheckpoint(checkpoint, &out);
    if (write_status.ok()) {
      out.flush();
      if (!out.good()) {
        write_status = Status::IoError("write to '" + tmp + "' failed");
      }
    }
  }
  // Never leave a half-written temp file behind: a later save would rename
  // over it anyway, but a crashed run must not be resumable from garbage.
  if (!write_status.ok()) {
    std::remove(tmp.c_str());
    return write_status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename '" + tmp + "' -> '" + path + "' failed");
  }
  return Status::OK();
}

Result<SessionCheckpoint> LoadSessionCheckpointFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open checkpoint '" + path + "'");
  return LoadSessionCheckpoint(&in);
}

Status SaveEventSessionCheckpoint(const EventSessionCheckpoint& checkpoint,
                                  std::ostream* out) {
  out->precision(17);  // exact double round-trip
  *out << kEventMagic << ' ' << kEventVersion << '\n';
  *out << "launched " << checkpoint.launched << '\n';
  *out << "completed " << checkpoint.completed << '\n';
  *out << "clock " << checkpoint.clock_seconds << '\n';
  *out << "default\n";
  WriteObservation(out, checkpoint.default_observation);
  *out << "sla " << checkpoint.sla.min_tps << ' ' << checkpoint.sla.max_lat
       << '\n';
  const DbInstanceSimulator::State& sim = checkpoint.simulator_state;
  *out << "simstate " << sim.num_evaluations << ' ' << sim.simulated_seconds
       << '\n';
  *out << "simrng ";
  WriteRngState(out, sim.rng);
  *out << "faultrng ";
  WriteRngState(out, sim.fault_rng);
  *out << "suprng ";
  WriteRngState(out, checkpoint.supervisor_rng);
  *out << "records " << checkpoint.records.size() << '\n';
  for (const EventRecord& record : checkpoint.records) {
    WriteEventRecord(out, record);
  }
  *out << "pending " << checkpoint.in_flight.size() << '\n';
  for (const InFlightRecord& record : checkpoint.in_flight) {
    WriteInFlightRecord(out, record);
  }
  if (!checkpoint.metrics.empty()) {
    *out << "metrics " << checkpoint.metrics.size() << '\n';
    for (const auto& [name, value] : checkpoint.metrics) {
      *out << name << ' ' << value << '\n';
    }
  }
  *out << "end\n";
  if (!out->good()) return Status::IoError("checkpoint write failed");
  return Status::OK();
}

Result<EventSessionCheckpoint> LoadEventSessionCheckpoint(std::istream* in) {
  std::string magic;
  int version = 0;
  if (!(*in >> magic >> version)) {
    return Status::IoError("not a restune event checkpoint");
  }
  if (magic != kEventMagic) {
    return Status::IoError("not a restune event checkpoint (magic '" + magic +
                           "')");
  }
  if (version != kEventVersion) {
    return Status::NotImplemented("unsupported event checkpoint version " +
                                  std::to_string(version));
  }
  EventSessionCheckpoint checkpoint;
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "launched"));
  if (!(*in >> checkpoint.launched)) {
    return Status::IoError("bad launch count in checkpoint");
  }
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "completed"));
  if (!(*in >> checkpoint.completed)) {
    return Status::IoError("bad completion count in checkpoint");
  }
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "clock"));
  if (!(*in >> checkpoint.clock_seconds)) {
    return Status::IoError("bad clock in checkpoint");
  }
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "default"));
  RESTUNE_RETURN_IF_ERROR(
      ReadObservation(in, &checkpoint.default_observation));
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "sla"));
  if (!(*in >> checkpoint.sla.min_tps >> checkpoint.sla.max_lat)) {
    return Status::IoError("bad sla in checkpoint");
  }
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "simstate"));
  DbInstanceSimulator::State& sim = checkpoint.simulator_state;
  if (!(*in >> sim.num_evaluations >> sim.simulated_seconds)) {
    return Status::IoError("bad simulator state in checkpoint");
  }
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "simrng"));
  RESTUNE_RETURN_IF_ERROR(ReadRngState(in, &sim.rng));
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "faultrng"));
  RESTUNE_RETURN_IF_ERROR(ReadRngState(in, &sim.fault_rng));
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "suprng"));
  RESTUNE_RETURN_IF_ERROR(ReadRngState(in, &checkpoint.supervisor_rng));
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "records"));
  size_t num_records = 0;
  if (!(*in >> num_records) || num_records > (1u << 24)) {
    return Status::IoError("bad record count in checkpoint");
  }
  checkpoint.records.reserve(num_records);
  for (size_t i = 0; i < num_records; ++i) {
    EventRecord record;
    RESTUNE_RETURN_IF_ERROR(ReadEventRecord(in, &record));
    checkpoint.records.push_back(std::move(record));
  }
  RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "pending"));
  size_t num_pending = 0;
  if (!(*in >> num_pending) || num_pending > (1u << 20)) {
    return Status::IoError("bad in-flight count in checkpoint");
  }
  checkpoint.in_flight.reserve(num_pending);
  for (size_t i = 0; i < num_pending; ++i) {
    InFlightRecord record;
    RESTUNE_RETURN_IF_ERROR(ReadInFlightRecord(in, &record));
    checkpoint.in_flight.push_back(std::move(record));
  }
  std::string tag;
  if (!(*in >> tag)) {
    return Status::IoError("checkpoint truncated: expected 'end'");
  }
  if (tag == "metrics") {
    size_t num_metrics = 0;
    if (!(*in >> num_metrics) || num_metrics > (1u << 20)) {
      return Status::IoError("bad metrics count in checkpoint");
    }
    checkpoint.metrics.reserve(num_metrics);
    for (size_t i = 0; i < num_metrics; ++i) {
      std::string name;
      int64_t value = 0;
      if (!(*in >> name >> value)) {
        return Status::IoError("bad metric entry in checkpoint");
      }
      checkpoint.metrics.emplace_back(std::move(name), value);
    }
    RESTUNE_RETURN_IF_ERROR(ExpectTag(in, "end"));
  } else if (tag != "end") {
    return Status::IoError("checkpoint corrupt: expected 'end', found '" +
                           tag + "'");
  }
  return checkpoint;
}

Status SaveEventSessionCheckpointFile(const EventSessionCheckpoint& checkpoint,
                                      const std::string& path) {
  const std::string tmp = path + ".tmp";
  Status write_status = Status::OK();
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::NotFound("cannot open '" + tmp + "' for write");
    write_status = SaveEventSessionCheckpoint(checkpoint, &out);
    if (write_status.ok()) {
      out.flush();
      if (!out.good()) {
        write_status = Status::IoError("write to '" + tmp + "' failed");
      }
    }
  }
  if (!write_status.ok()) {
    std::remove(tmp.c_str());
    return write_status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename '" + tmp + "' -> '" + path + "' failed");
  }
  return Status::OK();
}

Result<EventSessionCheckpoint> LoadEventSessionCheckpointFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open checkpoint '" + path + "'");
  return LoadEventSessionCheckpoint(&in);
}

}  // namespace restune
