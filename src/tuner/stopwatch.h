#ifndef RESTUNE_TUNER_STOPWATCH_H_
#define RESTUNE_TUNER_STOPWATCH_H_

#include <chrono>

namespace restune {

/// Monotonic wall-clock stopwatch for the Table 3 timing breakdown.
class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace restune

#endif  // RESTUNE_TUNER_STOPWATCH_H_
