#include "tuner/quarantine.h"

#include <cmath>

namespace restune {

KnobQuarantine::KnobQuarantine(QuarantineOptions options)
    : options_(options) {}

void KnobQuarantine::Add(const Vector& theta) {
  if (!options_.enabled || centers_.size() >= options_.max_regions) return;
  centers_.push_back(theta);
}

bool KnobQuarantine::Contains(const Vector& theta) const {
  for (const Vector& center : centers_) {
    if (center.size() != theta.size()) continue;
    double dist = 0.0;
    for (size_t i = 0; i < theta.size(); ++i) {
      dist = std::max(dist, std::fabs(theta[i] - center[i]));
    }
    if (dist <= options_.radius) return true;
  }
  return false;
}

}  // namespace restune
