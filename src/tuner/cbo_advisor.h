#ifndef RESTUNE_TUNER_CBO_ADVISOR_H_
#define RESTUNE_TUNER_CBO_ADVISOR_H_

#include <memory>
#include <vector>

#include "bo/acq_optimizer.h"
#include "bo/acquisition.h"
#include "bo/approx_surrogate.h"
#include "common/rng.h"
#include "dbsim/knob.h"
#include "gp/multi_output_gp.h"
#include "tuner/advisor.h"
#include "tuner/quarantine.h"

namespace restune {

/// Acquisition flavour of the plain-GP advisor.
enum class CboAcquisition {
  /// Constrained EI (paper Eq. 5) — this is ResTune-w/o-ML.
  kConstrainedEi,
  /// Plain EI on the resource objective, constraints ignored — the iTuned
  /// baseline after the paper's objective swap.
  kUnconstrainedEi,
  /// EI on resource + penalty * expected constraint violation (ablation).
  kPenalizedEi,
};

/// Options for `CboAdvisor`.
struct CboAdvisorOptions {
  CboAcquisition acquisition = CboAcquisition::kConstrainedEi;
  /// LHS bootstrap iterations before the GP drives the search (paper
  /// Section 7 uses 10 for the non-meta BO methods).
  int initial_lhs_samples = 10;
  double penalty = 10.0;  // for kPenalizedEi
  AcqOptimizerOptions acq_optimizer;
  GpOptions gp;
  uint64_t seed = 17;
  /// Knob-region quarantine around crashed/timed-out configurations.
  QuarantineOptions quarantine;
  /// Surrogate backend. `kExactGp` keeps the incremental multi-output GP
  /// (rank-one updates, amortized hyper-parameter refits). The approximate
  /// backends instead refit a `ScalableSurrogate` from the full history on
  /// demand: `kSubsetGp` caps model size at `surrogate_subset_size`,
  /// `kQuantileForest` drops the GP entirely — both keep suggest-time
  /// bounded as the history grows to the n=10k regime. Approximate
  /// backends learn about evaluation failures only through quarantine
  /// regions (the exact backend additionally feeds penalized points into
  /// its constraint models).
  SurrogateBackend surrogate_backend = SurrogateBackend::kExactGp;
  size_t surrogate_subset_size = 512;
  QuantileForestOptions surrogate_forest;
  /// Local-penalization radius around pending (in-flight) configurations
  /// for SuggestNextAsync.
  double pending_penalty_radius = 0.15;
};

/// Constrained Bayesian optimization on a fresh multi-output GP: the
/// tuning core of ResTune without the meta-learning boost, and (with the
/// unconstrained acquisition) the iTuned baseline.
class CboAdvisor : public Advisor {
 public:
  CboAdvisor(std::string name, size_t dim, CboAdvisorOptions options = {});

  const std::string& name() const override { return name_; }
  Status Begin(const Observation& default_observation,
               const SlaConstraints& sla) override;
  Result<Vector> SuggestNext() override;
  Result<Vector> SuggestNextAsync(const std::vector<Vector>& pending) override;
  Status Observe(const Observation& observation) override;
  Status ObserveFailure(const Vector& theta,
                        const EvaluationFault& fault) override;
  void SetTrustRegion(const Vector& center, double radius) override;
  void ClearTrustRegion() override;

  const MultiOutputGp& surrogate() const { return gp_; }
  const KnobQuarantine& quarantine() const { return quarantine_; }
  /// The approximate surrogate; null under `kExactGp`, unfitted until the
  /// first post-observation suggestion otherwise.
  const ScalableSurrogate* approx_surrogate() const { return approx_.get(); }

 private:
  AcquisitionContext MakeContext() const;
  /// The surrogate SuggestNext should score candidates with, refitting the
  /// approximate backend first when observations arrived since last time.
  Result<const Surrogate*> ActiveSurrogate();

  std::string name_;
  size_t dim_;
  CboAdvisorOptions options_;
  Rng rng_;
  MultiOutputGp gp_;
  SlaConstraints sla_;
  KnobQuarantine quarantine_;
  std::vector<Observation> history_;
  std::vector<Vector> pending_lhs_;
  GpSurrogate exact_surrogate_;
  std::unique_ptr<ScalableSurrogate> approx_;
  bool approx_dirty_ = false;
  /// In-flight configurations penalizing the current SuggestNextAsync call.
  std::vector<Vector> pending_penalty_;
  bool trust_region_active_ = false;
  Vector trust_center_;
  double trust_radius_ = 1.0;
};

}  // namespace restune

#endif  // RESTUNE_TUNER_CBO_ADVISOR_H_
