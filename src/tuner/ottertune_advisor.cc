#include "tuner/ottertune_advisor.h"

#include <cmath>
#include <limits>

#include "bo/lhs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tuner/stopwatch.h"

namespace restune {

namespace {

/// Mean internal-metric vector over a set of observations; empty if none
/// carry internals.
Vector MeanInternals(const std::vector<Observation>& observations) {
  Vector mean;
  size_t count = 0;
  for (const Observation& obs : observations) {
    if (obs.internals.empty()) continue;
    if (mean.empty()) mean.assign(obs.internals.size(), 0.0);
    if (obs.internals.size() != mean.size()) continue;
    for (size_t i = 0; i < mean.size(); ++i) mean[i] += obs.internals[i];
    ++count;
  }
  if (count > 0) {
    for (double& v : mean) v /= static_cast<double>(count);
  }
  return mean;
}

}  // namespace

OtterTuneAdvisor::OtterTuneAdvisor(size_t dim,
                                   std::vector<TuningTask> repository_tasks,
                                   OtterTuneAdvisorOptions options)
    : dim_(dim),
      tasks_(std::move(repository_tasks)),
      options_(options),
      rng_(options.seed) {
  gp_ = std::make_unique<MultiOutputGp>(dim_, options_.gp);
}

Status OtterTuneAdvisor::Begin(const Observation& default_observation,
                               const SlaConstraints& sla) {
  sla_ = sla;
  pending_lhs_ = LatinHypercubeSample(
      static_cast<size_t>(options_.initial_lhs_samples), dim_, &rng_);
  return Observe(default_observation);
}

Status OtterTuneAdvisor::Remap() {
  // OtterTune's workload mapping: nearest historical workload by Euclidean
  // distance of raw internal-metric vectors (absolute distances — the
  // hardware-scale weakness the paper contrasts against ranking loss).
  const Vector target_sig = MeanInternals(history_);
  if (target_sig.empty()) {
    mapped_task_ = -1;
    return Status::OK();
  }
  double best = std::numeric_limits<double>::infinity();
  int best_task = -1;
  for (size_t t = 0; t < tasks_.size(); ++t) {
    const Vector sig = MeanInternals(tasks_[t].observations);
    if (sig.size() != target_sig.size() || sig.empty()) continue;
    const double d = std::sqrt(SquaredDistance(sig, target_sig));
    if (d < best) {
      best = d;
      best_task = static_cast<int>(t);
    }
  }
  mapped_task_ = best_task;
  return Status::OK();
}

Status OtterTuneAdvisor::RefitModel() {
  // Single GP over mapped-task data plus target observations (the paper's
  // "uses the matched data for target workload in a single GP model").
  std::vector<Observation> training;
  if (mapped_task_ >= 0) {
    const auto& mapped = tasks_[static_cast<size_t>(mapped_task_)].observations;
    // Subsample long histories to keep the O(n^3) fit bounded.
    const size_t cap = 100;
    const size_t stride = std::max<size_t>(1, mapped.size() / cap);
    for (size_t i = 0; i < mapped.size(); i += stride) {
      if (mapped[i].theta.size() == dim_) training.push_back(mapped[i]);
    }
  }
  training.insert(training.end(), history_.begin(), history_.end());
  return gp_->Fit(training);
}

Result<Vector> OtterTuneAdvisor::SuggestNext() {
  RESTUNE_TRACE_SPAN("advisor.suggest");
  static obs::Counter* suggestions =
      obs::MetricsRegistry::Global()->GetCounter(
          "restune_advisor_suggestions_total{advisor=\"ottertune\"}");
  suggestions->Add();
  StopWatch watch;
  if (!pending_lhs_.empty()) {
    Vector next = pending_lhs_.back();
    pending_lhs_.pop_back();
    timing_.recommendation_s = watch.Seconds();
    return next;
  }
  if (!gp_->fitted()) {
    return Status::FailedPrecondition("no observations yet; call Begin first");
  }
  const GpSurrogate surrogate(gp_.get());
  AcquisitionContext ctx;
  ctx.lambda_tps = sla_.min_tps;
  ctx.lambda_lat = sla_.max_lat;
  for (const Observation& obs : history_) {
    if (!sla_.IsFeasible(obs)) continue;
    if (!ctx.has_feasible || obs.res < ctx.best_feasible_res) {
      ctx.has_feasible = true;
      ctx.best_feasible_res = obs.res;
    }
  }
  auto acquisition = [&](const Matrix& thetas) {
    return ConstrainedExpectedImprovementBatch(surrogate, thetas, ctx,
                                               options_.acq_optimizer.pool);
  };
  Vector next =
      MaximizeAcquisitionBatch(acquisition, dim_, &rng_, options_.acq_optimizer);
  timing_.recommendation_s = watch.Seconds();
  return next;
}

Status OtterTuneAdvisor::Observe(const Observation& observation) {
  StopWatch watch;
  history_.push_back(observation);
  if (mapped_task_ < 0 || ++observations_since_remap_ >= options_.remap_period) {
    RESTUNE_RETURN_IF_ERROR(Remap());
    observations_since_remap_ = 0;
  }
  timing_.meta_processing_s = watch.Seconds();
  watch.Restart();
  RESTUNE_RETURN_IF_ERROR(RefitModel());
  timing_.model_update_s = watch.Seconds();
  return Status::OK();
}

}  // namespace restune
