#include "meta/data_repository.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"
#include "gp/gp_serialization.h"
#include "meta/base_learner_cache.h"

namespace restune {

Status DataRepository::AddTask(TuningTask task) {
  if (task.name.empty()) {
    return Status::InvalidArgument("task must have a name");
  }
  if (task.observations.empty()) {
    return Status::InvalidArgument("task '" + task.name +
                                   "' has no observations");
  }
  tasks_.push_back(std::move(task));
  return Status::OK();
}

std::vector<BaseLearner> DataRepository::TrainBaseLearners(
    const std::function<bool(const TuningTask&)>& keep) const {
  std::vector<BaseLearner> learners;
  for (const TuningTask& task : tasks_) {
    if (!keep(task)) continue;
    Result<BaseLearner> learner = BaseLearner::Train(task);
    if (!learner.ok()) {
      RESTUNE_LOG(kWarning) << "skipping base-learner for task '" << task.name
                            << "': " << learner.status().ToString();
      continue;
    }
    learners.push_back(std::move(learner).value());
  }
  return learners;
}

std::vector<BaseLearner> DataRepository::TrainAllBaseLearners() const {
  return TrainBaseLearners([](const TuningTask&) { return true; });
}

std::vector<BaseLearner> DataRepository::TrainHoldOutWorkload(
    const std::string& workload) const {
  return TrainBaseLearners(
      [&](const TuningTask& t) { return t.workload != workload; });
}

std::vector<BaseLearner> DataRepository::TrainHoldOutHardware(
    const std::string& hardware) const {
  return TrainBaseLearners(
      [&](const TuningTask& t) { return t.hardware != hardware; });
}

size_t DataRepository::Compact(size_t max_observations_per_task) {
  std::vector<TuningTask> merged;
  size_t removed = 0;
  for (TuningTask& task : tasks_) {
    TuningTask* existing = nullptr;
    for (TuningTask& m : merged) {
      if (m.name == task.name) {
        existing = &m;
        break;
      }
    }
    if (existing != nullptr) {
      existing->observations.insert(existing->observations.end(),
                                    task.observations.begin(),
                                    task.observations.end());
      // The freshest meta-feature wins (characterizer may have improved).
      if (!task.meta_feature.empty()) {
        existing->meta_feature = std::move(task.meta_feature);
      }
      ++removed;
    } else {
      merged.push_back(std::move(task));
    }
  }
  // Subsample oversized histories with a uniform stride, keeping endpoints.
  for (TuningTask& task : merged) {
    if (max_observations_per_task == 0 ||
        task.observations.size() <= max_observations_per_task) {
      continue;
    }
    std::vector<Observation> kept;
    kept.reserve(max_observations_per_task);
    const double stride = static_cast<double>(task.observations.size()) /
                          static_cast<double>(max_observations_per_task);
    for (size_t k = 0; k < max_observations_per_task; ++k) {
      kept.push_back(
          task.observations[static_cast<size_t>(k * stride)]);
    }
    task.observations = std::move(kept);
  }
  tasks_ = std::move(merged);
  return removed;
}

Status DataRepository::SaveToFile(const std::string& path) const {
  return SaveToFile(path, {});
}

Status DataRepository::SaveToFile(
    const std::string& path, const std::vector<BaseLearner>& learners) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.precision(17);  // round-trip doubles exactly
  for (const TuningTask& task : tasks_) {
    out << "task " << task.name << " " << task.hardware << " "
        << task.workload << "\n";
    out << "meta";
    for (double v : task.meta_feature) out << " " << v;
    out << "\n";
    for (const Observation& obs : task.observations) {
      out << "obs";
      for (double v : obs.theta) out << " " << v;
      out << " | " << obs.res << " " << obs.tps << " " << obs.lat << "\n";
    }
    out << "end\n";
  }
  for (const BaseLearner& learner : learners) {
    out << "learner " << learner.name() << "\n";
    out << "lmeta";
    for (double v : learner.meta_feature()) out << " " << v;
    out << "\n";
    out << "std";
    for (MetricKind kind : kAllMetricKinds) {
      out << " " << learner.standardizer().mean(kind);
    }
    for (MetricKind kind : kAllMetricKinds) {
      out << " " << learner.standardizer().stddev(kind);
    }
    out << "\n";
    out << "fingerprint "
        << (learner.fingerprint().empty() ? "-" : learner.fingerprint())
        << "\n";
    RESTUNE_RETURN_IF_ERROR(SaveMultiOutputGp(learner.gp(), &out));
    out << "endlearner\n";
  }
  return out.good() ? Status::OK()
                    : Status::IoError("write to '" + path + "' failed");
}

Status DataRepository::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  loaded_learners_.clear();
  std::string line;
  TuningTask current;
  bool in_task = false;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag.empty()) continue;
    if (tag == "task") {
      if (in_task) {
        return Status::IoError(
            StringPrintf("line %zu: nested task record", line_no));
      }
      current = TuningTask{};
      ls >> current.name >> current.hardware >> current.workload;
      in_task = true;
    } else if (tag == "meta") {
      double v;
      while (ls >> v) current.meta_feature.push_back(v);
    } else if (tag == "obs") {
      Observation obs;
      std::string tok;
      while (ls >> tok && tok != "|") obs.theta.push_back(std::stod(tok));
      if (tok != "|" || !(ls >> obs.res >> obs.tps >> obs.lat)) {
        return Status::IoError(
            StringPrintf("line %zu: malformed observation", line_no));
      }
      current.observations.push_back(std::move(obs));
    } else if (tag == "end") {
      if (!in_task) {
        return Status::IoError(
            StringPrintf("line %zu: 'end' without 'task'", line_no));
      }
      RESTUNE_RETURN_IF_ERROR(AddTask(std::move(current)));
      in_task = false;
    } else if (tag == "learner") {
      if (in_task) {
        return Status::IoError(
            StringPrintf("line %zu: learner record inside task", line_no));
      }
      std::string learner_name;
      if (!(ls >> learner_name)) {
        return Status::IoError(
            StringPrintf("line %zu: learner record without name", line_no));
      }
      // lmeta line (meta-feature values).
      if (!std::getline(in, line)) {
        return Status::IoError("truncated learner record: missing lmeta");
      }
      ++line_no;
      Vector meta_feature;
      {
        std::istringstream ms(line);
        std::string mtag;
        if (!(ms >> mtag) || mtag != "lmeta") {
          return Status::IoError(
              StringPrintf("line %zu: expected lmeta record", line_no));
        }
        double v;
        while (ms >> v) meta_feature.push_back(v);
      }
      // std line: three means then three stddevs (res, tps, lat order).
      if (!std::getline(in, line)) {
        return Status::IoError("truncated learner record: missing std");
      }
      ++line_no;
      std::array<double, kNumMetricKinds> means{};
      std::array<double, kNumMetricKinds> stds{};
      {
        std::istringstream ss(line);
        std::string stag;
        ss >> stag;
        for (double& v : means) ss >> v;
        for (double& v : stds) ss >> v;
        if (stag != "std" || !ss) {
          return Status::IoError(
              StringPrintf("line %zu: malformed std record", line_no));
        }
      }
      std::string fingerprint;
      if (!(in >> line) || line != "fingerprint" || !(in >> fingerprint)) {
        return Status::IoError("truncated learner record: missing fingerprint");
      }
      if (fingerprint == "-") fingerprint.clear();
      // The GP payload — restores cached Cholesky factors, so no O(n^3)
      // refactorization happens on this path.
      RESTUNE_ASSIGN_OR_RETURN(MultiOutputGp gp, LoadMultiOutputGp(&in));
      if (!(in >> line) || line != "endlearner") {
        return Status::IoError("truncated learner record: missing endlearner");
      }
      BaseLearner learner = BaseLearner::FromParts(
          learner_name, std::move(meta_feature),
          MetricStandardizer::FromMoments(means, stds),
          std::make_shared<MultiOutputGp>(std::move(gp)), fingerprint);
      // Pre-seed the process cache: TrainBaseLearners over the same tasks
      // and options will hit these entries instead of refitting.
      if (!fingerprint.empty()) {
        BaseLearnerCache::Global()->Insert(fingerprint, learner);
      }
      loaded_learners_.push_back(std::move(learner));
    } else {
      return Status::IoError(
          StringPrintf("line %zu: unknown record '%s'", line_no, tag.c_str()));
    }
  }
  if (in_task) return Status::IoError("truncated file: task without 'end'");
  return Status::OK();
}

}  // namespace restune
