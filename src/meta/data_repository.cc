#include "meta/data_repository.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace restune {

Status DataRepository::AddTask(TuningTask task) {
  if (task.name.empty()) {
    return Status::InvalidArgument("task must have a name");
  }
  if (task.observations.empty()) {
    return Status::InvalidArgument("task '" + task.name +
                                   "' has no observations");
  }
  tasks_.push_back(std::move(task));
  return Status::OK();
}

std::vector<BaseLearner> DataRepository::TrainBaseLearners(
    const std::function<bool(const TuningTask&)>& keep) const {
  std::vector<BaseLearner> learners;
  for (const TuningTask& task : tasks_) {
    if (!keep(task)) continue;
    Result<BaseLearner> learner = BaseLearner::Train(task);
    if (!learner.ok()) {
      RESTUNE_LOG(kWarning) << "skipping base-learner for task '" << task.name
                            << "': " << learner.status().ToString();
      continue;
    }
    learners.push_back(std::move(learner).value());
  }
  return learners;
}

std::vector<BaseLearner> DataRepository::TrainAllBaseLearners() const {
  return TrainBaseLearners([](const TuningTask&) { return true; });
}

std::vector<BaseLearner> DataRepository::TrainHoldOutWorkload(
    const std::string& workload) const {
  return TrainBaseLearners(
      [&](const TuningTask& t) { return t.workload != workload; });
}

std::vector<BaseLearner> DataRepository::TrainHoldOutHardware(
    const std::string& hardware) const {
  return TrainBaseLearners(
      [&](const TuningTask& t) { return t.hardware != hardware; });
}

size_t DataRepository::Compact(size_t max_observations_per_task) {
  std::vector<TuningTask> merged;
  size_t removed = 0;
  for (TuningTask& task : tasks_) {
    TuningTask* existing = nullptr;
    for (TuningTask& m : merged) {
      if (m.name == task.name) {
        existing = &m;
        break;
      }
    }
    if (existing != nullptr) {
      existing->observations.insert(existing->observations.end(),
                                    task.observations.begin(),
                                    task.observations.end());
      // The freshest meta-feature wins (characterizer may have improved).
      if (!task.meta_feature.empty()) {
        existing->meta_feature = std::move(task.meta_feature);
      }
      ++removed;
    } else {
      merged.push_back(std::move(task));
    }
  }
  // Subsample oversized histories with a uniform stride, keeping endpoints.
  for (TuningTask& task : merged) {
    if (max_observations_per_task == 0 ||
        task.observations.size() <= max_observations_per_task) {
      continue;
    }
    std::vector<Observation> kept;
    kept.reserve(max_observations_per_task);
    const double stride = static_cast<double>(task.observations.size()) /
                          static_cast<double>(max_observations_per_task);
    for (size_t k = 0; k < max_observations_per_task; ++k) {
      kept.push_back(
          task.observations[static_cast<size_t>(k * stride)]);
    }
    task.observations = std::move(kept);
  }
  tasks_ = std::move(merged);
  return removed;
}

Status DataRepository::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.precision(17);  // round-trip doubles exactly
  for (const TuningTask& task : tasks_) {
    out << "task " << task.name << " " << task.hardware << " "
        << task.workload << "\n";
    out << "meta";
    for (double v : task.meta_feature) out << " " << v;
    out << "\n";
    for (const Observation& obs : task.observations) {
      out << "obs";
      for (double v : obs.theta) out << " " << v;
      out << " | " << obs.res << " " << obs.tps << " " << obs.lat << "\n";
    }
    out << "end\n";
  }
  return out.good() ? Status::OK()
                    : Status::IoError("write to '" + path + "' failed");
}

Status DataRepository::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::string line;
  TuningTask current;
  bool in_task = false;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag.empty()) continue;
    if (tag == "task") {
      if (in_task) {
        return Status::IoError(
            StringPrintf("line %zu: nested task record", line_no));
      }
      current = TuningTask{};
      ls >> current.name >> current.hardware >> current.workload;
      in_task = true;
    } else if (tag == "meta") {
      double v;
      while (ls >> v) current.meta_feature.push_back(v);
    } else if (tag == "obs") {
      Observation obs;
      std::string tok;
      while (ls >> tok && tok != "|") obs.theta.push_back(std::stod(tok));
      if (tok != "|" || !(ls >> obs.res >> obs.tps >> obs.lat)) {
        return Status::IoError(
            StringPrintf("line %zu: malformed observation", line_no));
      }
      current.observations.push_back(std::move(obs));
    } else if (tag == "end") {
      if (!in_task) {
        return Status::IoError(
            StringPrintf("line %zu: 'end' without 'task'", line_no));
      }
      RESTUNE_RETURN_IF_ERROR(AddTask(std::move(current)));
      in_task = false;
    } else {
      return Status::IoError(
          StringPrintf("line %zu: unknown record '%s'", line_no, tag.c_str()));
    }
  }
  if (in_task) return Status::IoError("truncated file: task without 'end'");
  return Status::OK();
}

}  // namespace restune
