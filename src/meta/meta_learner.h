#ifndef RESTUNE_META_META_LEARNER_H_
#define RESTUNE_META_META_LEARNER_H_

#include <array>
#include <memory>
#include <vector>

#include "bo/surrogate.h"
#include "common/result.h"
#include "common/rng.h"
#include "gp/gp_model.h"
#include "meta/base_learner.h"

namespace restune {

/// Options for the meta-learner ensemble.
struct MetaLearnerOptions {
  /// Iterations that use static (meta-feature) weights before switching to
  /// dynamic (ranking-loss) weights — 10 in the paper's setting.
  int static_weight_iterations = 10;
  /// Epanechnikov bandwidth ρ of Eq. 8. 0.2 reproduces the static-weight
  /// decay of paper Table 5 (W4/W5 fall outside the kernel support).
  double bandwidth = 0.2;
  /// Posterior samples used to estimate P(learner has the lowest ranking
  /// loss) in the dynamic phase (Section 6.4.2).
  int ranking_loss_samples = 30;
  /// Cap on the number of target observations entering the O(n²) pairwise
  /// ranking loss; beyond it a random subsample is used (keeps the
  /// per-iteration cost bounded on long tuning runs). 0 = no cap.
  int ranking_loss_max_points = 64;
  /// Eq. 7: variance comes from the target base-learner only. Setting this
  /// false uses the weight-averaged base variances instead (ablation).
  bool target_variance_only = true;
  /// Weight-dilution guard (RGPE v2): in each posterior sample a historical
  /// base-learner may only win the lowest-loss vote if it misranks fewer
  /// than half of the pairs — i.e. it beats random guessing. Prevents a
  /// crowd of useless learners from diluting the target's weight.
  bool prune_worse_than_random = true;
  /// Options for the target task's own GP (normalize_y is forced off; the
  /// meta-learner standardizes the target history itself).
  GpOptions target_gp;
  uint64_t seed = 99;
};

/// The meta-learner L_M (paper Section 6.3): a weighted ensemble over the
/// historical base-learners plus the target task's own GP.
///
///   μ_M(θ) = Σ g_i μ_i(θ) / Σ g_i          (Eq. 6)
///   σ²_M(θ) = σ²_{T+1}(θ)                  (Eq. 7)
///
/// Weights are static (meta-feature similarity, Eq. 8) for the first
/// iterations, then dynamic (probability of lowest ranking loss against the
/// target observations, Eq. 9, with leave-one-out for the target learner).
/// Implements `Surrogate`, so the same CEI acquisition machinery that runs
/// plain CBO runs the boosted tuner.
class MetaLearner : public Surrogate {
 public:
  MetaLearner(size_t dim, std::vector<BaseLearner> base_learners,
              Vector target_meta_feature, MetaLearnerOptions options = {});

  /// Ingests a raw target observation: re-standardizes the target history,
  /// refits the target GP, and recomputes the ensemble weights. Rejects
  /// non-finite inputs before any internal state changes.
  Status AddObservation(const Observation& raw_observation);

  /// Ingests an evaluation failure at θ as a hard SLA violation: the point
  /// enters the target GP's tps/lat constraint outputs with the penalized
  /// values (standardized with the real history's moments) but never the
  /// resource output, the ranking-loss machinery, or the standardizer
  /// itself. `penalty_tps`/`penalty_lat` are raw-unit values (typically 0
  /// and 2×λ_lat).
  Status AddFailure(const Vector& theta, double penalty_tps,
                    double penalty_lat);

  /// Ensemble posterior, in standardized target-task units.
  GpPrediction PredictMetric(MetricKind kind,
                             const Vector& theta) const override;

  /// Ensemble posterior for a whole candidate block: every member's means
  /// (and the target's variance) come from its GP batch-inference path, so
  /// a CEI sweep costs one blocked prediction per member instead of one
  /// per-point prediction per member per candidate.
  std::vector<GpPrediction> PredictMetricBatch(
      MetricKind kind, const Matrix& thetas,
      ThreadPool* pool = nullptr) const override;

  size_t dim() const override { return dim_; }

  /// Re-scaled constraint threshold λ'_u = L_M(θ_default) (Section 6.1).
  double RescaledThreshold(MetricKind kind, const Vector& default_theta) const;

  /// Maps a raw target metric into the surrogate's output units (for the
  /// incumbent passed to CEI). Identity until two observations exist.
  double StandardizeTargetMetric(MetricKind kind, double raw_value) const;

  /// True while static (meta-feature) weighting is in effect.
  bool in_static_phase() const;

  /// Current ensemble weights, normalized to sum to 1. Size is
  /// num_base_learners() + 1; the last entry is the target learner.
  const std::vector<double>& weights() const { return weights_; }

  /// Mean sampled ranking loss per historical base-learner, as a fraction
  /// of comparable pairs (paper Table 5's "Ranking Loss" row). Empty until
  /// the dynamic phase has data.
  std::vector<double> MeanRankingLossFractions() const;

  size_t num_base_learners() const { return bases_.size(); }
  size_t num_observations() const { return target_raw_.size(); }
  size_t num_failures() const { return failures_raw_.size(); }
  const std::vector<Observation>& target_observations() const {
    return target_raw_;
  }

 private:
  struct LearnerPrediction {
    std::array<GpPrediction, kNumMetricKinds> by_metric;
  };

  void RecomputeWeights();
  /// Mirrors weights_ into per-learner observability gauges.
  void PublishWeightGauges() const;
  std::vector<double> StaticWeights() const;
  std::vector<double> DynamicWeights();
  /// Sampled ranking losses; rows = samples, cols = learners (target last).
  std::vector<std::vector<double>> SampleRankingLosses();
  Status RefitTargetGp();

  size_t dim_;
  std::vector<BaseLearner> bases_;
  Vector target_meta_feature_;
  MetaLearnerOptions options_;
  mutable Rng rng_;

  std::vector<Observation> target_raw_;
  /// Penalized failure points (raw units): constraint-only evidence for the
  /// target GP, excluded from the standardizer and the ranking losses.
  std::vector<Observation> failures_raw_;
  MetricStandardizer target_standardizer_;
  std::unique_ptr<MultiOutputGp> target_gp_;

  std::vector<double> weights_;  // normalized, target last
  /// Whether the previous RecomputeWeights ran the static path — detects
  /// the static→dynamic switch for the phase-transition counter.
  bool was_static_phase_ = true;

  /// base_pred_cache_[i][j]: base learner i's posterior at target point j
  /// (standardized units of learner i). Grows incrementally with the target
  /// history so the dynamic-weight pass never re-predicts old points.
  std::vector<std::vector<LearnerPrediction>> base_pred_cache_;

  /// Mean sampled loss fractions from the last dynamic-weight pass.
  std::vector<double> last_loss_fractions_;
};

/// Epanechnikov quadratic kernel γ(t) = 3/4 (1 - t²) for t ≤ 1, else 0
/// (Eq. 8). Exposed for tests and for the Table 5 bench.
double EpanechnikovKernel(double t);

}  // namespace restune

#endif  // RESTUNE_META_META_LEARNER_H_
