#ifndef RESTUNE_META_STANDARDIZER_H_
#define RESTUNE_META_STANDARDIZER_H_

#include <array>
#include <vector>

#include "gp/observation.h"

namespace restune {

/// Scale unification (paper Section 6.1): per-task standardization of each
/// metric (res/tps/lat) to zero mean and unit standard deviation, so that
/// observations from differently sized instances and workloads are
/// comparable inside the ensemble.
class MetricStandardizer {
 public:
  MetricStandardizer() = default;

  /// Fits means and standard deviations from a task's observation history.
  /// Degenerate (constant) metrics get std 1 so transforms stay finite;
  /// non-finite metric values are skipped (a metric with no finite values
  /// standardizes with mean 0, std 1).
  static MetricStandardizer FromObservations(
      const std::vector<Observation>& observations);

  /// Rebuilds a standardizer from stored moments (deserialization path).
  static MetricStandardizer FromMoments(
      const std::array<double, kNumMetricKinds>& means,
      const std::array<double, kNumMetricKinds>& stds) {
    MetricStandardizer out;
    out.means_ = means;
    out.stds_ = stds;
    return out;
  }

  double Standardize(MetricKind kind, double value) const;
  double Destandardize(MetricKind kind, double value) const;

  /// Standardizes all three metrics of an observation (θ unchanged).
  Observation Standardize(const Observation& obs) const;

  double mean(MetricKind kind) const {
    return means_[static_cast<size_t>(kind)];
  }
  double stddev(MetricKind kind) const {
    return stds_[static_cast<size_t>(kind)];
  }

 private:
  std::array<double, kNumMetricKinds> means_{0.0, 0.0, 0.0};
  std::array<double, kNumMetricKinds> stds_{1.0, 1.0, 1.0};
};

}  // namespace restune

#endif  // RESTUNE_META_STANDARDIZER_H_
