#ifndef RESTUNE_META_BASE_LEARNER_CACHE_H_
#define RESTUNE_META_BASE_LEARNER_CACHE_H_

#include <map>
#include <optional>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "meta/base_learner.h"

namespace restune {

/// Process-global cache of trained base-learners keyed by content
/// fingerprint (task name + meta-feature + observation bits + training
/// options, see `BaseLearnerFingerprint`).
///
/// Base-learners are frozen after training, so two requests with the same
/// fingerprint would produce bit-identical models — there is never a
/// reason to refit. `BaseLearner::Train` consults this cache, which fixes
/// the historical per-session refit: a server opening the same repository
/// for a second session reuses every factorization from the first, and
/// repository files that carry serialized learners (see DataRepository)
/// pre-seed the cache on load so even the first session skips training.
///
/// Entries are whole `BaseLearner` copies; the expensive state (the
/// multi-output GP with its factorizations) sits behind a shared_ptr, so a
/// hit costs a few shared_ptr increments.
class BaseLearnerCache {
 public:
  static BaseLearnerCache* Global();

  /// The cached learner for `fingerprint`, if any.
  std::optional<BaseLearner> Lookup(const std::string& fingerprint) const;

  /// Stores a copy of `learner` under `fingerprint` (first write wins —
  /// same fingerprint implies an equivalent model).
  void Insert(const std::string& fingerprint, const BaseLearner& learner);

  size_t size() const;

  /// Drops every entry. Tests only — production caches are append-only
  /// for the process lifetime.
  void Clear();

 private:
  mutable Mutex mu_;
  std::map<std::string, BaseLearner> entries_ GUARDED_BY(mu_);
};

}  // namespace restune

#endif  // RESTUNE_META_BASE_LEARNER_CACHE_H_
