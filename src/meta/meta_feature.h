#ifndef RESTUNE_META_META_FEATURE_H_
#define RESTUNE_META_META_FEATURE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "ml/random_forest.h"
#include "ml/tfidf.h"

namespace restune {

/// Options for the workload characterization pipeline.
struct CharacterizerOptions {
  /// Number of log-spaced resource-cost classes the forest predicts; this
  /// is also the meta-feature dimensionality.
  int num_cost_classes = 8;
  RandomForestOptions forest;
};

/// Workload characterization (paper Section 6.2): SQL reserved words →
/// TF-IDF → random-forest cost classification → averaged class distribution
/// as the workload's meta-feature embedding.
class WorkloadCharacterizer {
 public:
  explicit WorkloadCharacterizer(CharacterizerOptions options = {});

  /// Trains the TF-IDF vocabulary and the cost classifier from labeled
  /// queries: (SQL text, relative resource cost). Cost labels are
  /// log-bucketed to tame their skew before classification.
  Status Train(const std::vector<std::pair<std::string, double>>& labeled);

  /// Meta-feature for a workload: the mean predicted cost-class
  /// distribution over its queries.
  Result<Vector> MetaFeature(const std::vector<std::string>& queries) const;

  /// Predicted cost-class distribution for one query.
  Result<Vector> ClassifyQuery(const std::string& query) const;

  bool trained() const { return forest_.fitted(); }
  int num_cost_classes() const { return options_.num_cost_classes; }
  double oob_accuracy() const { return forest_.oob_accuracy(); }

 private:
  CharacterizerOptions options_;
  TfIdfVectorizer vectorizer_;
  RandomForest forest_;
  double min_cost_ = 1.0;
  double max_cost_ = 1.0;
};

}  // namespace restune

#endif  // RESTUNE_META_META_FEATURE_H_
