#include "meta/meta_feature.h"

#include <algorithm>

#include "ml/sql_tokens.h"

namespace restune {

WorkloadCharacterizer::WorkloadCharacterizer(CharacterizerOptions options)
    : options_(options), forest_(options.forest) {}

Status WorkloadCharacterizer::Train(
    const std::vector<std::pair<std::string, double>>& labeled) {
  if (labeled.empty()) {
    return Status::InvalidArgument("no labeled queries to train on");
  }
  std::vector<std::vector<std::string>> docs;
  docs.reserve(labeled.size());
  min_cost_ = labeled[0].second;
  max_cost_ = labeled[0].second;
  for (const auto& [sql, cost] : labeled) {
    docs.push_back(ExtractReservedWords(sql));
    min_cost_ = std::min(min_cost_, cost);
    max_cost_ = std::max(max_cost_, cost);
  }
  if (max_cost_ <= min_cost_) max_cost_ = min_cost_ * 2.0 + 1.0;
  RESTUNE_RETURN_IF_ERROR(vectorizer_.Fit(docs));

  Matrix x(docs.size(), vectorizer_.vocabulary_size());
  std::vector<int> y(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    const Vector v = vectorizer_.Transform(docs[i]);
    for (size_t c = 0; c < v.size(); ++c) x(i, c) = v[c];
    y[i] = LogCostClass(labeled[i].second, min_cost_, max_cost_,
                        options_.num_cost_classes);
  }
  return forest_.Fit(x, y, options_.num_cost_classes);
}

Result<Vector> WorkloadCharacterizer::ClassifyQuery(
    const std::string& query) const {
  if (!trained()) {
    return Status::FailedPrecondition("characterizer is not trained");
  }
  return forest_.PredictProba(
      vectorizer_.Transform(ExtractReservedWords(query)));
}

Result<Vector> WorkloadCharacterizer::MetaFeature(
    const std::vector<std::string>& queries) const {
  if (!trained()) {
    return Status::FailedPrecondition("characterizer is not trained");
  }
  if (queries.empty()) {
    return Status::InvalidArgument("no queries to characterize");
  }
  Vector mean(options_.num_cost_classes, 0.0);
  for (const std::string& q : queries) {
    const Vector proba = forest_.PredictProba(
        vectorizer_.Transform(ExtractReservedWords(q)));
    for (size_t c = 0; c < mean.size(); ++c) mean[c] += proba[c];
  }
  const double inv = 1.0 / static_cast<double>(queries.size());
  for (double& v : mean) v *= inv;
  return mean;
}

}  // namespace restune
