#ifndef RESTUNE_META_TASK_H_
#define RESTUNE_META_TASK_H_

#include <string>
#include <vector>

#include "gp/observation.h"

namespace restune {

/// The meta-data one historical tuning task contributes to the repository:
/// identification, the workload meta-feature, and the raw observation
/// history (paper Section 4, "Data Repository").
struct TuningTask {
  std::string name;
  /// Instance label ('A'..'F') — lets experiments hold out tasks by
  /// hardware (the paper's varying-hardware setting).
  std::string hardware;
  /// Workload name — lets experiments hold out tasks by workload (the
  /// varying-workloads setting).
  std::string workload;
  /// Embedding from workload characterization (Section 6.2).
  Vector meta_feature;
  /// Raw (unstandardized) observation history.
  std::vector<Observation> observations;
};

}  // namespace restune

#endif  // RESTUNE_META_TASK_H_
