#include "meta/base_learner_cache.h"

namespace restune {

BaseLearnerCache* BaseLearnerCache::Global() {
  // restune-lint: allow(naked-new) -- intentional leak, process singleton
  static BaseLearnerCache* cache = new BaseLearnerCache();
  return cache;
}

std::optional<BaseLearner> BaseLearnerCache::Lookup(
    const std::string& fingerprint) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void BaseLearnerCache::Insert(const std::string& fingerprint,
                              const BaseLearner& learner) {
  MutexLock lock(&mu_);
  entries_.emplace(fingerprint, learner);
}

size_t BaseLearnerCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

void BaseLearnerCache::Clear() {
  MutexLock lock(&mu_);
  entries_.clear();
}

}  // namespace restune
