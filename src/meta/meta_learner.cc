#include "meta/meta_learner.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "linalg/matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace restune {

namespace {

struct MetaMetrics {
  obs::Counter* observations;
  obs::Counter* failures;
  obs::Counter* weight_recomputes;
  obs::Counter* dynamic_switches;
  obs::Gauge* base_learners;
  obs::Gauge* target_weight;

  static MetaMetrics* Get() {
    static MetaMetrics* m = [] {
      auto* registry = obs::MetricsRegistry::Global();
      // restune-lint: allow(naked-new) -- intentional leak, handle cache
      auto* metrics = new MetaMetrics();
      metrics->observations =
          registry->GetCounter("restune_meta_observations_total");
      metrics->failures = registry->GetCounter("restune_meta_failures_total");
      metrics->weight_recomputes =
          registry->GetCounter("restune_meta_weight_recomputes_total");
      metrics->dynamic_switches =
          registry->GetCounter("restune_meta_dynamic_switches_total");
      metrics->base_learners = registry->GetGauge("restune_meta_base_learners");
      metrics->target_weight =
          registry->GetGauge("restune_meta_weight{learner=\"target\"}");
      return metrics;
    }();
    return m;
  }
};

/// Per-base-learner weight gauges, created lazily per ensemble position.
/// Position (not name) keys the gauge so the cardinality is bounded by the
/// ensemble size regardless of repository contents.
obs::Gauge* BaseWeightGauge(size_t index) {
  return obs::MetricsRegistry::Global()->GetGauge(
      "restune_meta_weight{learner=\"base" + std::to_string(index) + "\"}");
}

}  // namespace

double EpanechnikovKernel(double t) {
  if (t > 1.0 || t < -1.0) return 0.0;
  return 0.75 * (1.0 - t * t);
}

MetaLearner::MetaLearner(size_t dim, std::vector<BaseLearner> base_learners,
                         Vector target_meta_feature, MetaLearnerOptions options)
    : dim_(dim),
      target_meta_feature_(std::move(target_meta_feature)),
      options_(options),
      rng_(options.seed) {
  // Graceful degradation: a corrupt repository entry (wrong knob dimension,
  // no training data) costs that one base-learner, not the session. The
  // ensemble math below assumes every member predicts in the target's knob
  // space, so incompatible members must not enter at all.
  bases_.reserve(base_learners.size());
  for (BaseLearner& base : base_learners) {
    if (base.dim() != dim_) {
      RESTUNE_LOG(kWarning) << "dropping base-learner '" << base.name()
                            << "': knob dim " << base.dim()
                            << " != target dim " << dim_;
      continue;
    }
    if (base.num_observations() == 0) {
      RESTUNE_LOG(kWarning) << "dropping base-learner '" << base.name()
                            << "': no training observations";
      continue;
    }
    bases_.push_back(std::move(base));
  }
  base_pred_cache_.resize(bases_.size());
  MetaMetrics::Get()->base_learners->Set(static_cast<double>(bases_.size()));
  GpOptions target_options = options_.target_gp;
  target_options.normalize_y = false;  // we standardize the history ourselves
  target_options.seed = options.seed ^ 0x5bd1e995;
  target_gp_ = std::make_unique<MultiOutputGp>(dim_, target_options);
  RecomputeWeights();
}

bool MetaLearner::in_static_phase() const {
  return static_cast<int>(target_raw_.size()) <
         options_.static_weight_iterations;
}

Status MetaLearner::RefitTargetGp() {
  // The standardizer sees only real measurements: penalized failure points
  // are evidence, not data, and must not shift the task's metric moments.
  target_standardizer_ = MetricStandardizer::FromObservations(target_raw_);
  std::vector<Observation> standardized;
  standardized.reserve(target_raw_.size());
  for (const Observation& obs : target_raw_) {
    standardized.push_back(target_standardizer_.Standardize(obs));
  }
  std::vector<Observation> standardized_failures;
  standardized_failures.reserve(failures_raw_.size());
  for (const Observation& obs : failures_raw_) {
    standardized_failures.push_back(target_standardizer_.Standardize(obs));
  }
  return target_gp_->Fit(standardized, standardized_failures);
}

Status MetaLearner::AddObservation(const Observation& raw_observation) {
  if (raw_observation.theta.size() != dim_) {
    return Status::InvalidArgument("observation dimension mismatch");
  }
  for (double t : raw_observation.theta) {
    if (!std::isfinite(t)) {
      return Status::InvalidArgument("non-finite knob value in observation");
    }
  }
  if (!std::isfinite(raw_observation.res) ||
      !std::isfinite(raw_observation.tps) ||
      !std::isfinite(raw_observation.lat)) {
    return Status::InvalidArgument("non-finite metric in observation");
  }
  RESTUNE_TRACE_SPAN("meta.observe");
  MetaMetrics::Get()->observations->Add();
  target_raw_.push_back(raw_observation);
  RESTUNE_RETURN_IF_ERROR(RefitTargetGp());

  // Extend each base learner's prediction cache with the new point. The
  // learners are immutable and each owns its cache row, so they extend
  // concurrently.
  ThreadPool::Shared()->ParallelFor(bases_.size(), [&](size_t i) {
    LearnerPrediction pred;
    for (MetricKind kind : kAllMetricKinds) {
      pred.by_metric[static_cast<size_t>(kind)] =
          bases_[i].Predict(kind, raw_observation.theta);
    }
    base_pred_cache_[i].push_back(pred);
  });
  RecomputeWeights();
  return Status::OK();
}

Status MetaLearner::AddFailure(const Vector& theta, double penalty_tps,
                               double penalty_lat) {
  if (theta.size() != dim_) {
    return Status::InvalidArgument("failure theta dimension mismatch");
  }
  for (double t : theta) {
    if (!std::isfinite(t)) {
      return Status::InvalidArgument("non-finite knob value in failure");
    }
  }
  if (!std::isfinite(penalty_tps) || !std::isfinite(penalty_lat)) {
    return Status::InvalidArgument("non-finite penalty value");
  }
  MetaMetrics::Get()->failures->Add();
  Observation penalized;
  penalized.theta = theta;
  penalized.tps = penalty_tps;
  penalized.lat = penalty_lat;
  failures_raw_.push_back(std::move(penalized));
  // With no real observations yet there is nothing to fit against; the
  // failure is ingested at the next refit. Weights are untouched either
  // way: failures carry no ranking information (their metric values are
  // penalties, not measurements).
  if (target_raw_.empty()) return Status::OK();
  return RefitTargetGp();
}

std::vector<double> MetaLearner::StaticWeights() const {
  std::vector<double> w(bases_.size() + 1, 0.0);
  for (size_t i = 0; i < bases_.size(); ++i) {
    const Vector& m = bases_[i].meta_feature();
    double dist = 0.0;
    if (m.size() == target_meta_feature_.size() && !m.empty()) {
      dist = std::sqrt(SquaredDistance(m, target_meta_feature_));
    } else {
      dist = 2.0 * options_.bandwidth;  // incomparable -> outside support
    }
    w[i] = EpanechnikovKernel(dist / options_.bandwidth);
  }
  // The target learner joins the static ensemble once it has data; its
  // meta-feature distance to itself is zero.
  if (target_gp_->fitted()) w.back() = EpanechnikovKernel(0.0);
  return w;
}

std::vector<std::vector<double>> MetaLearner::SampleRankingLosses() {
  const size_t total = target_raw_.size();
  const size_t num_learners = bases_.size() + 1;
  const int samples = options_.ranking_loss_samples;

  // Subsample the target points entering the O(n²) pair scan when the
  // history is long.
  std::vector<size_t> points(total);
  for (size_t j = 0; j < total; ++j) points[j] = j;
  if (options_.ranking_loss_max_points > 0 &&
      total > static_cast<size_t>(options_.ranking_loss_max_points)) {
    rng_.Shuffle(&points);
    points.resize(static_cast<size_t>(options_.ranking_loss_max_points));
  }
  const size_t n = points.size();

  // Target ground truth per metric.
  std::array<std::vector<double>, kNumMetricKinds> truth;
  for (MetricKind kind : kAllMetricKinds) {
    auto& t = truth[static_cast<size_t>(kind)];
    t.resize(n);
    for (size_t j = 0; j < n; ++j) {
      t[j] = target_raw_[points[j]].metric(kind);
    }
  }

  // Leave-one-out posterior for the target learner (Section 6.4.2).
  std::array<std::vector<GpPrediction>, kNumMetricKinds> target_loo;
  for (MetricKind kind : kAllMetricKinds) {
    target_loo[static_cast<size_t>(kind)] =
        target_gp_->model(kind).LeaveOneOutPredictions();
  }

  std::vector<std::vector<double>> losses(
      samples, std::vector<double>(num_learners, 0.0));
  std::vector<double> draw(n);
  for (int s = 0; s < samples; ++s) {
    for (size_t i = 0; i < num_learners; ++i) {
      double loss = 0.0;
      for (MetricKind kind : kAllMetricKinds) {
        const size_t u = static_cast<size_t>(kind);
        for (size_t j = 0; j < n; ++j) {
          const GpPrediction& p =
              i < bases_.size()
                  ? base_pred_cache_[i][points[j]].by_metric[u]
                  : target_loo[u][points[j]];
          draw[j] = rng_.Gaussian(p.mean, p.stddev());
        }
        for (size_t j = 0; j < n; ++j) {
          for (size_t k = j + 1; k < n; ++k) {
            const bool pred_order = draw[j] <= draw[k];
            const bool true_order = truth[u][j] <= truth[u][k];
            if (pred_order != true_order) loss += 1.0;
          }
        }
      }
      losses[s][i] = loss;
    }
  }
  // Normalize to the fraction of misranked pairs so results are comparable
  // across subsample sizes (and directly reportable as Table 5's row).
  const double pairs =
      0.5 * static_cast<double>(n) * static_cast<double>(n - 1) *
      static_cast<double>(kNumMetricKinds);
  if (pairs > 0) {
    for (auto& row : losses) {
      for (double& v : row) v /= pairs;
    }
  }
  return losses;
}

std::vector<double> MetaLearner::DynamicWeights() {
  const size_t n = target_raw_.size();
  const size_t num_learners = bases_.size() + 1;
  std::vector<double> w(num_learners, 0.0);
  if (n < 2 || !target_gp_->fitted()) {
    w.back() = 1.0;
    return w;
  }

  const std::vector<std::vector<double>> losses = SampleRankingLosses();

  // Each learner is weighted by the probability that it attains the lowest
  // sampled ranking loss; ties share the win. Under the dilution guard a
  // historical learner that misranks at least half the pairs (no better
  // than random) is ineligible in that sample.
  auto eligible = [&](const std::vector<double>& row, size_t i) {
    if (!options_.prune_worse_than_random) return true;
    if (i + 1 == row.size()) return true;  // the target is always eligible
    return row[i] < 0.5;
  };
  for (const std::vector<double>& row : losses) {
    double best = row.back();
    for (size_t i = 0; i < row.size(); ++i) {
      if (eligible(row, i)) best = std::min(best, row[i]);
    }
    size_t num_best = 0;
    for (size_t i = 0; i < row.size(); ++i) {
      if (eligible(row, i) && row[i] <= best + 1e-12) ++num_best;
    }
    const double share = 1.0 / static_cast<double>(std::max<size_t>(1, num_best));
    for (size_t i = 0; i < row.size(); ++i) {
      if (eligible(row, i) && row[i] <= best + 1e-12) w[i] += share;
    }
  }
  const double inv = 1.0 / static_cast<double>(losses.size());
  for (double& v : w) v *= inv;

  // Record mean loss fractions for introspection (Table 5); losses are
  // already normalized to misranked-pair fractions.
  last_loss_fractions_.assign(num_learners, 0.0);
  for (const std::vector<double>& row : losses) {
    for (size_t i = 0; i < num_learners; ++i) {
      last_loss_fractions_[i] += row[i];
    }
  }
  for (double& v : last_loss_fractions_) {
    v /= static_cast<double>(losses.size());
  }
  return w;
}

void MetaLearner::RecomputeWeights() {
  RESTUNE_TRACE_SPAN("meta.weights");
  MetaMetrics* metrics = MetaMetrics::Get();
  metrics->weight_recomputes->Add();
  const bool static_phase = in_static_phase();
  if (was_static_phase_ && !static_phase) metrics->dynamic_switches->Add();
  was_static_phase_ = static_phase;
  std::vector<double> w = static_phase ? StaticWeights() : DynamicWeights();
  double sum = 0.0;
  for (double v : w) sum += v;
  if (sum < 1e-12) {
    // No comparable history and no target data yet: fall back to a uniform
    // ensemble so the surrogate is still defined.
    std::fill(w.begin(), w.end(), 1.0);
    if (!target_gp_->fitted()) w.back() = 0.0;
    sum = 0.0;
    for (double v : w) sum += v;
    if (sum < 1e-12) {
      w.assign(w.size(), 0.0);
      weights_ = std::move(w);
      PublishWeightGauges();
      return;
    }
  }
  for (double& v : w) v /= sum;
#ifndef NDEBUG
  // Normalization contract (Eq. 6 denominators assume it): every weight is
  // a finite probability and the ensemble sums to 1. A violation means the
  // ranking-loss sampler produced NaN losses or a negative kernel value.
  double check_sum = 0.0;
  for (double v : w) {
    RESTUNE_DCHECK(std::isfinite(v) && v >= 0.0 && v <= 1.0)
        << "ensemble weight " << v << " outside [0, 1]";
    check_sum += v;
  }
  RESTUNE_DCHECK(std::abs(check_sum - 1.0) < 1e-9)
      << "ensemble weights sum to " << check_sum << ", expected 1";
#endif
  weights_ = std::move(w);
  PublishWeightGauges();
}

void MetaLearner::PublishWeightGauges() const {
  if (weights_.empty()) return;
  // One gauge per ensemble position; the handles are process-global and
  // cached inside the registry, so this is a cold map lookup per learner
  // once per iteration — far off the hot path.
  for (size_t i = 0; i + 1 < weights_.size(); ++i) {
    BaseWeightGauge(i)->Set(weights_[i]);
  }
  MetaMetrics::Get()->target_weight->Set(weights_.back());
}

GpPrediction MetaLearner::PredictMetric(MetricKind kind,
                                        const Vector& theta) const {
  // Weighted ensemble mean (Eq. 6).
  double mean = 0.0;
  double weight_sum = 0.0;
  for (size_t i = 0; i < bases_.size(); ++i) {
    if (weights_[i] <= 0.0) continue;
    mean += weights_[i] * bases_[i].PredictMean(kind, theta);
    weight_sum += weights_[i];
  }
  GpPrediction target_pred{0.0, 1.0};
  const bool target_fitted = target_gp_->fitted();
  if (target_fitted) {
    target_pred = target_gp_->Predict(kind, theta);
    if (weights_.back() > 0.0) {
      mean += weights_.back() * target_pred.mean;
      weight_sum += weights_.back();
    }
  }
  mean = weight_sum > 1e-12 ? mean / weight_sum : 0.0;

  // Variance from the target learner only (Eq. 7). Before the target GP
  // exists (or under the ablation flag) fall back to the weighted average
  // of base-learner variances so the acquisition is still informative.
  double variance;
  if (options_.target_variance_only && target_fitted) {
    variance = target_pred.variance;
  } else {
    double var_acc = 0.0, var_w = 0.0;
    for (size_t i = 0; i < bases_.size(); ++i) {
      if (weights_[i] <= 0.0) continue;
      var_acc += weights_[i] * bases_[i].Predict(kind, theta).variance;
      var_w += weights_[i];
    }
    if (target_fitted && weights_.back() > 0.0) {
      var_acc += weights_.back() * target_pred.variance;
      var_w += weights_.back();
    }
    variance = var_w > 1e-12 ? var_acc / var_w : 1.0;
  }
  return {mean, std::max(variance, 1e-12)};
}

std::vector<GpPrediction> MetaLearner::PredictMetricBatch(
    MetricKind kind, const Matrix& thetas, ThreadPool* pool) const {
  const size_t m = thetas.rows();
  std::vector<GpPrediction> out(m);
  if (m == 0) return out;

  // Weighted ensemble mean (Eq. 6), one batch prediction per member. The
  // member loop stays serial — each member's batch path already spreads its
  // candidate block across `pool` — and accumulation order matches the
  // per-point ensemble exactly.
  Vector mean(m, 0.0);
  double weight_sum = 0.0;
  for (size_t i = 0; i < bases_.size(); ++i) {
    if (weights_[i] <= 0.0) continue;
    const Vector base_means = bases_[i].PredictMeanBatch(kind, thetas, pool);
    for (size_t j = 0; j < m; ++j) mean[j] += weights_[i] * base_means[j];
    weight_sum += weights_[i];
  }
  std::vector<GpPrediction> target_pred;
  const bool target_fitted = target_gp_->fitted();
  if (target_fitted) {
    target_pred = target_gp_->PredictBatch(kind, thetas, pool);
    if (weights_.back() > 0.0) {
      for (size_t j = 0; j < m; ++j) {
        mean[j] += weights_.back() * target_pred[j].mean;
      }
      weight_sum += weights_.back();
    }
  }
  const double inv_weight = weight_sum > 1e-12 ? 1.0 / weight_sum : 0.0;

  // Variance from the target learner only (Eq. 7), with the same fallback
  // as the per-point path.
  if (options_.target_variance_only && target_fitted) {
    for (size_t j = 0; j < m; ++j) {
      out[j] = {mean[j] * inv_weight,
                std::max(target_pred[j].variance, 1e-12)};
    }
    return out;
  }
  Vector var_acc(m, 0.0);
  double var_w = 0.0;
  for (size_t i = 0; i < bases_.size(); ++i) {
    if (weights_[i] <= 0.0) continue;
    const std::vector<GpPrediction> base_pred =
        bases_[i].PredictBatch(kind, thetas, pool);
    for (size_t j = 0; j < m; ++j) {
      var_acc[j] += weights_[i] * base_pred[j].variance;
    }
    var_w += weights_[i];
  }
  if (target_fitted && weights_.back() > 0.0) {
    for (size_t j = 0; j < m; ++j) {
      var_acc[j] += weights_.back() * target_pred[j].variance;
    }
    var_w += weights_.back();
  }
  for (size_t j = 0; j < m; ++j) {
    const double variance = var_w > 1e-12 ? var_acc[j] / var_w : 1.0;
    out[j] = {mean[j] * inv_weight, std::max(variance, 1e-12)};
  }
  return out;
}

double MetaLearner::RescaledThreshold(MetricKind kind,
                                      const Vector& default_theta) const {
  return PredictMetric(kind, default_theta).mean;
}

double MetaLearner::StandardizeTargetMetric(MetricKind kind,
                                            double raw_value) const {
  if (target_raw_.size() < 2) return raw_value;
  return target_standardizer_.Standardize(kind, raw_value);
}

std::vector<double> MetaLearner::MeanRankingLossFractions() const {
  if (last_loss_fractions_.empty()) return {};
  return std::vector<double>(last_loss_fractions_.begin(),
                             last_loss_fractions_.end() - 1);
}

}  // namespace restune
