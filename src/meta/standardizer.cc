#include "meta/standardizer.h"

#include <cmath>

#include "common/stats.h"

namespace restune {

MetricStandardizer MetricStandardizer::FromObservations(
    const std::vector<Observation>& observations) {
  MetricStandardizer s;
  for (MetricKind kind : kAllMetricKinds) {
    std::vector<double> values;
    values.reserve(observations.size());
    // Non-finite measurements (corrupted replays that slipped through) are
    // excluded from the moments: one NaN would otherwise poison the mean
    // and through it every standardized value of the task.
    for (const Observation& obs : observations) {
      const double v = obs.metric(kind);
      if (std::isfinite(v)) values.push_back(v);
    }
    const size_t i = static_cast<size_t>(kind);
    s.means_[i] = values.empty() ? 0.0 : Mean(values);
    const double sd = values.empty() ? 0.0 : PopulationStdDev(values);
    s.stds_[i] = sd > 1e-12 ? sd : 1.0;
  }
  return s;
}

double MetricStandardizer::Standardize(MetricKind kind, double value) const {
  const size_t i = static_cast<size_t>(kind);
  return (value - means_[i]) / stds_[i];
}

double MetricStandardizer::Destandardize(MetricKind kind, double value) const {
  const size_t i = static_cast<size_t>(kind);
  return value * stds_[i] + means_[i];
}

Observation MetricStandardizer::Standardize(const Observation& obs) const {
  Observation out = obs;
  for (MetricKind kind : kAllMetricKinds) {
    out.metric(kind) = Standardize(kind, obs.metric(kind));
  }
  return out;
}

}  // namespace restune
