#include "meta/standardizer.h"

#include <cmath>

#include "common/contracts.h"
#include "common/stats.h"

namespace restune {

MetricStandardizer MetricStandardizer::FromObservations(
    const std::vector<Observation>& observations) {
  MetricStandardizer s;
  for (MetricKind kind : kAllMetricKinds) {
    std::vector<double> values;
    values.reserve(observations.size());
    // Non-finite measurements (corrupted replays that slipped through) are
    // excluded from the moments: one NaN would otherwise poison the mean
    // and through it every standardized value of the task.
    for (const Observation& obs : observations) {
      const double v = obs.metric(kind);
      if (std::isfinite(v)) values.push_back(v);
    }
    const size_t i = static_cast<size_t>(kind);
    s.means_[i] = values.empty() ? 0.0 : Mean(values);
    const double sd = values.empty() ? 0.0 : PopulationStdDev(values);
    s.stds_[i] = sd > 1e-12 ? sd : 1.0;
  }
  return s;
}

double MetricStandardizer::Standardize(MetricKind kind, double value) const {
  const size_t i = static_cast<size_t>(kind);
  // Invertibility contract: FromObservations floors every std at 1.0 when
  // the sample is degenerate, so a zero/non-finite scale here means the
  // standardizer was default-constructed or its state was corrupted.
  RESTUNE_DCHECK(stds_[i] > 0.0 && std::isfinite(stds_[i]))
      << "standardizer scale for " << MetricKindName(kind) << " is "
      << stds_[i] << "; Standardize/Destandardize would not be inverses";
  return (value - means_[i]) / stds_[i];
}

double MetricStandardizer::Destandardize(MetricKind kind, double value) const {
  const size_t i = static_cast<size_t>(kind);
  RESTUNE_DCHECK(stds_[i] > 0.0 && std::isfinite(stds_[i]))
      << "standardizer scale for " << MetricKindName(kind) << " is "
      << stds_[i] << "; Standardize/Destandardize would not be inverses";
  return value * stds_[i] + means_[i];
}

Observation MetricStandardizer::Standardize(const Observation& obs) const {
  Observation out = obs;
  for (MetricKind kind : kAllMetricKinds) {
    out.metric(kind) = Standardize(kind, obs.metric(kind));
  }
  return out;
}

}  // namespace restune
