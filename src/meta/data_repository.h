#ifndef RESTUNE_META_DATA_REPOSITORY_H_
#define RESTUNE_META_DATA_REPOSITORY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "meta/base_learner.h"
#include "meta/task.h"

namespace restune {

/// The backend store of historical tuning meta-data (paper Section 4,
/// "Data Repository"): one `TuningTask` per past tuning run, from which
/// base-learners are trained on demand and cached.
///
/// Supports the paper's three evaluation settings via filtered views:
/// * original         — every task;
/// * varying workload — hold out tasks of the target workload;
/// * varying hardware — hold out tasks from the target's instance type.
class DataRepository {
 public:
  DataRepository() = default;

  /// Registers one finished tuning task's meta-data.
  Status AddTask(TuningTask task);

  size_t num_tasks() const { return tasks_.size(); }
  const std::vector<TuningTask>& tasks() const { return tasks_; }

  /// Trains (and caches) base-learners for the tasks selected by `keep`.
  /// Training failures for individual tasks are skipped with a warning —
  /// a corrupt history must not block tuning.
  std::vector<BaseLearner> TrainBaseLearners(
      const std::function<bool(const TuningTask&)>& keep) const;

  /// All tasks (the paper's original setting).
  std::vector<BaseLearner> TrainAllBaseLearners() const;

  /// Hold out tasks whose workload equals `workload` (varying workloads).
  std::vector<BaseLearner> TrainHoldOutWorkload(
      const std::string& workload) const;

  /// Hold out tasks whose hardware equals `hardware` (varying hardware).
  std::vector<BaseLearner> TrainHoldOutHardware(
      const std::string& hardware) const;

  /// Repository maintenance: merges tasks with the same name (later
  /// observations appended to the first occurrence) and subsamples any task
  /// above `max_observations_per_task` by uniform striding. Returns the
  /// number of tasks removed by merging. Call periodically in a long-lived
  /// server so repeated sessions on the same workload do not bloat the
  /// store or skew the ensemble toward duplicated learners.
  size_t Compact(size_t max_observations_per_task = 400);

  /// Serializes all tasks to a line-oriented text file.
  Status SaveToFile(const std::string& path) const;

  /// Serializes all tasks plus trained base-learners — including each
  /// learner's fitted GP with its cached Cholesky factors — so a later
  /// `LoadFromFile` pre-seeds the process-global `BaseLearnerCache` and
  /// `TrainBaseLearners` never refits what this call persisted.
  Status SaveToFile(const std::string& path,
                    const std::vector<BaseLearner>& learners) const;

  /// Loads tasks previously written by `SaveToFile` (appends to the
  /// current contents). Serialized base-learner records, when present, are
  /// reassembled without training and inserted into the global
  /// `BaseLearnerCache` under their stored fingerprints.
  Status LoadFromFile(const std::string& path);

  /// Base-learners reassembled by the last `LoadFromFile` call.
  const std::vector<BaseLearner>& loaded_learners() const {
    return loaded_learners_;
  }

 private:
  std::vector<TuningTask> tasks_;
  std::vector<BaseLearner> loaded_learners_;
};

}  // namespace restune

#endif  // RESTUNE_META_DATA_REPOSITORY_H_
