#ifndef RESTUNE_META_BASE_LEARNER_H_
#define RESTUNE_META_BASE_LEARNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "gp/multi_output_gp.h"
#include "meta/standardizer.h"
#include "meta/task.h"

namespace restune {

/// Options for training one base-learner.
struct BaseLearnerOptions {
  /// GP fit options; defaults match `BaseLearner::DefaultGpOptions()`
  /// (no target normalization — inputs are pre-standardized per task).
  GpOptions gp;
  /// When non-zero and the task history is larger, the learner trains on a
  /// deterministic farthest-point subset of at most this many observations
  /// — capping the O(n^3) one-shot fit and the O(n) ensemble prediction
  /// cost per learner for tasks with very long histories. 0 = exact.
  size_t subset_size = 0;

  BaseLearnerOptions();
};

/// Content fingerprint of a (task, options) training request: task name,
/// meta-feature and observation doubles hashed by bit pattern, plus every
/// option that affects the fitted model. Equal fingerprints mean training
/// would reproduce the same model bit for bit, which is what lets the
/// process-global cache (base_learner_cache.h) and serialized repository
/// learners stand in for a fresh fit.
std::string BaseLearnerFingerprint(const TuningTask& task,
                                   const BaseLearnerOptions& options);

/// A historical base-learner: a multi-output GP fitted on one task's
/// *standardized* observations (scale unification, Section 6.1). Its
/// predictions are relative values — meaningful for ranking and for the
/// weighted ensemble mean, not as absolute metrics.
class BaseLearner {
 public:
  /// Trains a base-learner from a task's raw observation history.
  /// Hyper-parameters are optimized once here; the learner is immutable
  /// afterwards, which is what makes the repository cheap to reuse.
  /// Consults the process-global `BaseLearnerCache` first: a task already
  /// trained under the same fingerprint (this session or a repository
  /// load) is returned without refitting.
  static Result<BaseLearner> Train(const TuningTask& task,
                                   const BaseLearnerOptions& options);

  /// Legacy overload: exact training with the given GP options.
  static Result<BaseLearner> Train(const TuningTask& task,
                                   GpOptions gp_options = DefaultGpOptions());

  /// Reassembles a learner from already-built parts — the deserialization
  /// path (DataRepository loads the fitted GP, including cached Cholesky
  /// factors, so no training happens here).
  static BaseLearner FromParts(std::string name, Vector meta_feature,
                               MetricStandardizer standardizer,
                               std::shared_ptr<MultiOutputGp> gp,
                               std::string fingerprint);

  /// GP options suitable for one-shot base-learner training.
  static GpOptions DefaultGpOptions();

  /// Posterior in standardized units.
  GpPrediction Predict(MetricKind kind, const Vector& theta) const;

  /// Mean-only fast path (O(n·d)) — all the ensemble mean needs (Eq. 7
  /// discards base-learner variances).
  double PredictMean(MetricKind kind, const Vector& theta) const;

  /// Batch counterparts over the rows of `thetas`, via the GP batch
  /// inference path, distributed over `pool` (null = shared pool).
  std::vector<GpPrediction> PredictBatch(MetricKind kind, const Matrix& thetas,
                                         ThreadPool* pool = nullptr) const;
  Vector PredictMeanBatch(MetricKind kind, const Matrix& thetas,
                          ThreadPool* pool = nullptr) const;

  const std::string& name() const { return name_; }
  const Vector& meta_feature() const { return meta_feature_; }
  const MetricStandardizer& standardizer() const { return standardizer_; }
  /// Fingerprint of the training inputs (empty for learners built before
  /// fingerprinting, e.g. via the legacy FromParts-free paths).
  const std::string& fingerprint() const { return fingerprint_; }
  const MultiOutputGp& gp() const { return *gp_; }
  size_t num_observations() const { return gp_->num_observations(); }
  size_t dim() const { return gp_->dim(); }

 private:
  BaseLearner() = default;

  std::string name_;
  Vector meta_feature_;
  MetricStandardizer standardizer_;
  std::string fingerprint_;
  std::shared_ptr<MultiOutputGp> gp_;  // shared: learners are copied around
};

}  // namespace restune

#endif  // RESTUNE_META_BASE_LEARNER_H_
