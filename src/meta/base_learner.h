#ifndef RESTUNE_META_BASE_LEARNER_H_
#define RESTUNE_META_BASE_LEARNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "gp/multi_output_gp.h"
#include "meta/standardizer.h"
#include "meta/task.h"

namespace restune {

/// A historical base-learner: a multi-output GP fitted on one task's
/// *standardized* observations (scale unification, Section 6.1). Its
/// predictions are relative values — meaningful for ranking and for the
/// weighted ensemble mean, not as absolute metrics.
class BaseLearner {
 public:
  /// Trains a base-learner from a task's raw observation history.
  /// Hyper-parameters are optimized once here; the learner is immutable
  /// afterwards, which is what makes the repository cheap to reuse.
  static Result<BaseLearner> Train(const TuningTask& task,
                                   GpOptions gp_options = DefaultGpOptions());

  /// GP options suitable for one-shot base-learner training.
  static GpOptions DefaultGpOptions();

  /// Posterior in standardized units.
  GpPrediction Predict(MetricKind kind, const Vector& theta) const;

  /// Mean-only fast path (O(n·d)) — all the ensemble mean needs (Eq. 7
  /// discards base-learner variances).
  double PredictMean(MetricKind kind, const Vector& theta) const;

  /// Batch counterparts over the rows of `thetas`, via the GP batch
  /// inference path.
  std::vector<GpPrediction> PredictBatch(MetricKind kind,
                                         const Matrix& thetas) const;
  Vector PredictMeanBatch(MetricKind kind, const Matrix& thetas) const;

  const std::string& name() const { return name_; }
  const Vector& meta_feature() const { return meta_feature_; }
  const MetricStandardizer& standardizer() const { return standardizer_; }
  size_t num_observations() const { return gp_->num_observations(); }
  size_t dim() const { return gp_->dim(); }

 private:
  BaseLearner() = default;

  std::string name_;
  Vector meta_feature_;
  MetricStandardizer standardizer_;
  std::shared_ptr<MultiOutputGp> gp_;  // shared: learners are copied around
};

}  // namespace restune

#endif  // RESTUNE_META_BASE_LEARNER_H_
