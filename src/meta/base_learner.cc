#include "meta/base_learner.h"

namespace restune {

GpOptions BaseLearner::DefaultGpOptions() {
  GpOptions options;
  options.normalize_y = false;  // inputs are pre-standardized per task
  options.optimize_hyperparams = true;
  options.hyperopt_max_iters = 50;
  options.hyperopt_restarts = 1;
  return options;
}

Result<BaseLearner> BaseLearner::Train(const TuningTask& task,
                                       GpOptions gp_options) {
  if (task.observations.empty()) {
    return Status::InvalidArgument("task '" + task.name +
                                   "' has no observations");
  }
  BaseLearner learner;
  learner.name_ = task.name;
  learner.meta_feature_ = task.meta_feature;
  learner.standardizer_ =
      MetricStandardizer::FromObservations(task.observations);

  std::vector<Observation> standardized;
  standardized.reserve(task.observations.size());
  for (const Observation& obs : task.observations) {
    standardized.push_back(learner.standardizer_.Standardize(obs));
  }
  learner.gp_ = std::make_shared<MultiOutputGp>(
      task.observations[0].theta.size(), gp_options);
  RESTUNE_RETURN_IF_ERROR(learner.gp_->Fit(standardized));
  return learner;
}

GpPrediction BaseLearner::Predict(MetricKind kind, const Vector& theta) const {
  return gp_->Predict(kind, theta);
}

double BaseLearner::PredictMean(MetricKind kind, const Vector& theta) const {
  return gp_->PredictMean(kind, theta);
}

std::vector<GpPrediction> BaseLearner::PredictBatch(
    MetricKind kind, const Matrix& thetas) const {
  return gp_->PredictBatch(kind, thetas);
}

Vector BaseLearner::PredictMeanBatch(MetricKind kind,
                                     const Matrix& thetas) const {
  return gp_->PredictMeanBatch(kind, thetas);
}

}  // namespace restune
