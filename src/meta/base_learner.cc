#include "meta/base_learner.h"

#include "bo/approx_surrogate.h"
#include "common/fnv.h"
#include "meta/base_learner_cache.h"
#include "obs/metrics.h"

namespace restune {

namespace {

struct LearnerMetrics {
  obs::Counter* fits;
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;

  static LearnerMetrics* Get() {
    static LearnerMetrics* m = [] {
      auto* registry = obs::MetricsRegistry::Global();
      // restune-lint: allow(naked-new) -- intentional leak, handle cache
      auto* metrics = new LearnerMetrics();
      metrics->fits =
          registry->GetCounter("restune_meta_base_learner_fits_total");
      metrics->cache_hits =
          registry->GetCounter("restune_meta_base_learner_cache_hits_total");
      metrics->cache_misses =
          registry->GetCounter("restune_meta_base_learner_cache_misses_total");
      return metrics;
    }();
    return m;
  }
};

}  // namespace

BaseLearnerOptions::BaseLearnerOptions()
    : gp(BaseLearner::DefaultGpOptions()) {}

std::string BaseLearnerFingerprint(const TuningTask& task,
                                   const BaseLearnerOptions& options) {
  Fnv1a fnv;
  fnv.AddString(task.name);
  fnv.AddU64(task.meta_feature.size());
  for (double v : task.meta_feature) fnv.AddDouble(v);
  fnv.AddU64(task.observations.size());
  for (const Observation& obs : task.observations) {
    fnv.AddU64(obs.theta.size());
    for (double v : obs.theta) fnv.AddDouble(v);
    fnv.AddDouble(obs.res);
    fnv.AddDouble(obs.tps);
    fnv.AddDouble(obs.lat);
  }
  // Every option that changes the fitted model.
  fnv.AddDouble(options.gp.noise_variance);
  fnv.AddU64(options.gp.normalize_y ? 1 : 0);
  fnv.AddU64(options.gp.optimize_hyperparams ? 1 : 0);
  fnv.AddU64(static_cast<uint64_t>(options.gp.hyperopt_max_iters));
  fnv.AddU64(static_cast<uint64_t>(options.gp.hyperopt_restarts));
  fnv.AddU64(options.gp.seed);
  fnv.AddU64(options.subset_size);
  return fnv.Hex();
}

GpOptions BaseLearner::DefaultGpOptions() {
  GpOptions options;
  options.normalize_y = false;  // inputs are pre-standardized per task
  options.optimize_hyperparams = true;
  options.hyperopt_max_iters = 50;
  options.hyperopt_restarts = 1;
  return options;
}

Result<BaseLearner> BaseLearner::Train(const TuningTask& task,
                                       GpOptions gp_options) {
  BaseLearnerOptions options;
  options.gp = gp_options;
  return Train(task, options);
}

Result<BaseLearner> BaseLearner::Train(const TuningTask& task,
                                       const BaseLearnerOptions& options) {
  if (task.observations.empty()) {
    return Status::InvalidArgument("task '" + task.name +
                                   "' has no observations");
  }
  const std::string fingerprint = BaseLearnerFingerprint(task, options);
  if (std::optional<BaseLearner> cached =
          BaseLearnerCache::Global()->Lookup(fingerprint)) {
    LearnerMetrics::Get()->cache_hits->Add();
    return *std::move(cached);
  }
  LearnerMetrics::Get()->cache_misses->Add();

  BaseLearner learner;
  learner.name_ = task.name;
  learner.meta_feature_ = task.meta_feature;
  learner.fingerprint_ = fingerprint;
  learner.standardizer_ =
      MetricStandardizer::FromObservations(task.observations);

  std::vector<Observation> standardized;
  standardized.reserve(task.observations.size());
  if (options.subset_size > 0 &&
      task.observations.size() > options.subset_size) {
    // Subset-of-data learner: keep a farthest-point design in θ-space.
    // The standardizer still comes from the FULL history above, so the
    // learner's output scale does not drift with the subset choice.
    const size_t d = task.observations[0].theta.size();
    Matrix thetas(task.observations.size(), d);
    for (size_t i = 0; i < task.observations.size(); ++i) {
      double* row = thetas.RowPtr(i);
      for (size_t j = 0; j < d; ++j) row[j] = task.observations[i].theta[j];
    }
    for (size_t idx : FarthestPointSubset(thetas, options.subset_size)) {
      standardized.push_back(
          learner.standardizer_.Standardize(task.observations[idx]));
    }
  } else {
    for (const Observation& obs : task.observations) {
      standardized.push_back(learner.standardizer_.Standardize(obs));
    }
  }
  learner.gp_ = std::make_shared<MultiOutputGp>(
      task.observations[0].theta.size(), options.gp);
  RESTUNE_RETURN_IF_ERROR(learner.gp_->Fit(standardized));
  LearnerMetrics::Get()->fits->Add();
  BaseLearnerCache::Global()->Insert(fingerprint, learner);
  return learner;
}

BaseLearner BaseLearner::FromParts(std::string name, Vector meta_feature,
                                   MetricStandardizer standardizer,
                                   std::shared_ptr<MultiOutputGp> gp,
                                   std::string fingerprint) {
  BaseLearner learner;
  learner.name_ = std::move(name);
  learner.meta_feature_ = std::move(meta_feature);
  learner.standardizer_ = standardizer;
  learner.fingerprint_ = std::move(fingerprint);
  learner.gp_ = std::move(gp);
  return learner;
}

GpPrediction BaseLearner::Predict(MetricKind kind, const Vector& theta) const {
  return gp_->Predict(kind, theta);
}

double BaseLearner::PredictMean(MetricKind kind, const Vector& theta) const {
  return gp_->PredictMean(kind, theta);
}

std::vector<GpPrediction> BaseLearner::PredictBatch(MetricKind kind,
                                                    const Matrix& thetas,
                                                    ThreadPool* pool) const {
  return gp_->PredictBatch(kind, thetas, pool);
}

Vector BaseLearner::PredictMeanBatch(MetricKind kind, const Matrix& thetas,
                                     ThreadPool* pool) const {
  return gp_->PredictMeanBatch(kind, thetas, pool);
}

}  // namespace restune
