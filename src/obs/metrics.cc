#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace restune {
namespace obs {

namespace {

std::atomic<size_t>& ShardCursor() {
  static std::atomic<size_t> cursor{0};
  return cursor;
}

/// Prometheus sample lines need the metric's base name separated from any
/// baked-in label block so suffixes (`_bucket`, `_sum`) attach correctly.
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
  } else {
    *base = name.substr(0, brace);
    *labels = name.substr(brace);
  }
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

size_t ThisThreadShard() {
  thread_local const size_t shard =
      ShardCursor().fetch_add(1, std::memory_order_relaxed) %
      kMetricShards;
  return shard;
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Set(int64_t value) {
  shards_[0].value.store(value, std::memory_order_relaxed);
  for (size_t i = 1; i < shards_.size(); ++i) {
    shards_[i].value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::Set(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  bits_.store(bits, std::memory_order_relaxed);
}

double Gauge::Value() const {
  const uint64_t bits = bits_.load(std::memory_order_relaxed);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

size_t Histogram::BucketIndex(double value) {
  if (!(value >= kHistogramMin)) return 0;  // also catches NaN
  // Bucket i covers [kHistogramMin * 2^i, kHistogramMin * 2^(i+1)).
  const int exponent = std::ilogb(value / kHistogramMin);
  if (exponent < 0) return 0;
  if (static_cast<size_t>(exponent) >= kHistogramBuckets) {
    return kHistogramBuckets;  // overflow bucket
  }
  return static_cast<size_t>(exponent);
}

double Histogram::BucketUpperBound(size_t i) {
  return kHistogramMin * std::ldexp(1.0, static_cast<int>(i) + 1);
}

void Histogram::Observe(double value) {
  Shard& shard = shards_[ThisThreadShard()];
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  uint64_t expected = shard.sum_bits.load(std::memory_order_relaxed);
  for (;;) {
    double sum = 0.0;
    std::memcpy(&sum, &expected, sizeof(sum));
    sum += value;
    uint64_t desired = 0;
    std::memcpy(&desired, &sum, sizeof(desired));
    if (shard.sum_bits.compare_exchange_weak(expected, desired,
                                             std::memory_order_relaxed)) {
      break;
    }
  }
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    const uint64_t bits = shard.sum_bits.load(std::memory_order_relaxed);
    double sum = 0.0;
    std::memcpy(&sum, &bits, sizeof(sum));
    total += sum;
  }
  return total;
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum_bits.store(0, std::memory_order_relaxed);
  }
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(kHistogramBuckets + 1, 0);
  for (const auto& shard : shards_) {
    for (size_t i = 0; i < counts.size(); ++i) {
      counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

MetricsRegistry* MetricsRegistry::Global() {
  // restune-lint: allow(naked-new) -- intentional leak, lives for the process
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

CounterSnapshot MetricsRegistry::Counters() const {
  MutexLock lock(&mu_);
  CounterSnapshot snapshot;
  snapshot.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.emplace_back(name, counter->Value());
  }
  return snapshot;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::Gauges() const {
  MutexLock lock(&mu_);
  std::vector<std::pair<std::string, double>> snapshot;
  snapshot.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.emplace_back(name, gauge->Value());
  }
  return snapshot;
}

void MetricsRegistry::RestoreCounters(const CounterSnapshot& snapshot) {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) {
    static_cast<void>(name);
    counter->Set(0);
  }
  for (const auto& [name, value] : snapshot) {
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    slot->Set(value);
  }
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) {
    static_cast<void>(name);
    counter->Set(0);
  }
  for (auto& [name, gauge] : gauges_) {
    static_cast<void>(name);
    gauge->Set(0.0);
  }
  for (auto& [name, histogram] : histograms_) {
    static_cast<void>(name);
    histogram->Reset();
  }
}

std::string MetricsRegistry::PrometheusText() const {
  MutexLock lock(&mu_);
  std::string out;
  std::string base, labels;
  for (const auto& [name, counter] : counters_) {
    SplitLabels(name, &base, &labels);
    out += "# TYPE " + base + " counter\n";
    out += name + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    SplitLabels(name, &base, &labels);
    out += "# TYPE " + base + " gauge\n";
    out += name + " " + FormatDouble(gauge->Value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    SplitLabels(name, &base, &labels);
    out += "# TYPE " + base + " histogram\n";
    const std::vector<int64_t> buckets = histogram->BucketCounts();
    // Prometheus histogram buckets are cumulative and carry an `le` label
    // merged with any labels baked into the metric name.
    const std::string label_prefix =
        labels.empty() ? "{" : labels.substr(0, labels.size() - 1) + ",";
    int64_t cumulative = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      cumulative += buckets[i];
      const std::string le = i + 1 == buckets.size()
                                 ? "+Inf"
                                 : FormatDouble(Histogram::BucketUpperBound(i));
      out += base + "_bucket" + label_prefix + "le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += base + "_sum" + labels + " " + FormatDouble(histogram->Sum()) + "\n";
    out += base + "_count" + labels + " " + std::to_string(histogram->Count()) +
           "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace restune
