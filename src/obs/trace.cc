#include "obs/trace.h"

#include <unistd.h>

#include <cinttypes>

#include "obs/metrics.h"

namespace restune {
namespace obs {

namespace {

/// Flush at least this often so a crashed soak run still leaves a
/// readable trace tail for post-mortem.
constexpr int64_t kFlushEveryLines = 64;

std::atomic<int>& TraceTidCursor() {
  static std::atomic<int> cursor{0};
  return cursor;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceThreadState* ThisThreadTraceState() {
  thread_local TraceThreadState state;
  return &state;
}

Tracer* Tracer::Global() {
  // restune-lint: allow(naked-new) -- intentional leak, lives for the process
  static Tracer* tracer = new Tracer();
  return tracer;
}

bool Tracer::Start(const std::string& path) {
  MutexLock lock(&mu_);
  if (file_ != nullptr) return false;  // already tracing
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  file_ = file;
  epoch_ = std::chrono::steady_clock::now();
  lines_since_flush_ = 0;
  std::fprintf(file_, "{\"type\":\"trace_start\",\"clock\":\"steady\",\"pid\":%d}\n",
               static_cast<int>(::getpid()));
  // Release pairs with the acquire load in enabled(): any thread that sees
  // tracing on also sees the epoch_ written above, so the lock-free
  // NowMicros() fast path never reads an uninitialized epoch.
  enabled_.store(true, std::memory_order_release);
  return true;
}

void Tracer::Stop() {
  // Disable first so in-flight spans constructed after this point are
  // no-ops; spans already begun still write under mu_ before the file
  // closes because we take the lock after flipping the flag.
  enabled_.store(false, std::memory_order_relaxed);
  MutexLock lock(&mu_);
  if (file_ == nullptr) return;
  const CounterSnapshot counters = MetricsRegistry::Global()->Counters();
  for (const auto& [name, value] : counters) {
    std::fprintf(file_, "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%" PRId64 "}\n",
                 JsonEscape(name).c_str(), value);
  }
  const auto gauges = MetricsRegistry::Global()->Gauges();
  for (const auto& [name, value] : gauges) {
    std::fprintf(file_, "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%.17g}\n",
                 JsonEscape(name).c_str(), value);
  }
  const int64_t end_us = NowMicros();
  std::fprintf(file_, "{\"type\":\"trace_end\",\"t_us\":%" PRId64 "}\n", end_us);
  std::fclose(file_);
  file_ = nullptr;
}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::RecordSpan(const char* name, int64_t t_us, int64_t dur_us,
                        int depth) {
  TraceThreadState* state = ThisThreadTraceState();
  if (state->tid < 0) {
    state->tid = TraceTidCursor().fetch_add(1, std::memory_order_relaxed);
  }
  char line[256];
  const int n = std::snprintf(
      line, sizeof(line),
      "{\"type\":\"span\",\"name\":\"%s\",\"t_us\":%" PRId64
      ",\"dur_us\":%" PRId64 ",\"tid\":%d,\"depth\":%d}\n",
      name, t_us, dur_us, state->tid, depth);
  if (n <= 0) return;
  MutexLock lock(&mu_);
  if (file_ == nullptr) return;
  std::fwrite(line, 1, static_cast<size_t>(n), file_);
  if (++lines_since_flush_ >= kFlushEveryLines) {
    std::fflush(file_);
    lines_since_flush_ = 0;
  }
}

void Tracer::RecordLine(const std::string& json_object) {
  if (!enabled()) return;
  MutexLock lock(&mu_);
  if (file_ == nullptr) return;
  std::fwrite(json_object.data(), 1, json_object.size(), file_);
  std::fputc('\n', file_);
  if (++lines_since_flush_ >= kFlushEveryLines) {
    std::fflush(file_);
    lines_since_flush_ = 0;
  }
}

void TraceSpan::Begin(Tracer* tracer, const char* name) {
  tracer_ = tracer;
  name_ = name;
  start_us_ = tracer->NowMicros();
  ++ThisThreadTraceState()->depth;
}

void TraceSpan::End() {
  TraceThreadState* state = ThisThreadTraceState();
  const int depth = --state->depth;
  const int64_t end_us = tracer_->NowMicros();
  tracer_->RecordSpan(name_, start_us_, end_us - start_us_, depth);
}

}  // namespace obs
}  // namespace restune
