#ifndef RESTUNE_OBS_TRACE_H_
#define RESTUNE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

// Leaf headers (tools/layering.json): header-only, include nothing, so
// using them here does not give src/obs an internal module dependency.
#include "common/mutex.h"
#include "common/thread_annotations.h"

/// Structured trace layer of the observability subsystem.
///
/// `RESTUNE_TRACE_SPAN("gp.fit")` opens an RAII span: on destruction it
/// appends one JSON line to the trace file with the span's name, start
/// offset, duration, thread id, and nesting depth. All timestamps come
/// from `std::chrono::steady_clock` (monotonic) relative to `Start()` —
/// the trace layer never reads a wall clock and never touches an RNG
/// stream, both enforced by the `obs-discipline` lint rule, so enabling
/// tracing cannot perturb the determinism domain.
///
/// Cost discipline mirrors contracts.h:
///   * Runtime-disabled (the default): a span is one relaxed atomic load
///     in the constructor and nothing else — no clock reads, no strings.
///   * Compile-time disabled (`-DRESTUNE_OBS_DISABLED`): the macro folds
///     to `static_cast<void>(sizeof(name))` — the expression stays
///     compiled (typos still break the build) but generates no code,
///     the same `true ||` spirit as RESTUNE_DCHECK.
///
/// Output schema (docs/OBSERVABILITY.md): one JSON object per line.
///   {"type":"trace_start","clock":"steady","pid":...}
///   {"type":"span","name":"...","t_us":...,"dur_us":...,"tid":...,
///    "depth":...}            — t_us = start offset from Start(), µs
///   {"type":"counter","name":"...","value":...}   — at Stop()
///   {"type":"gauge","name":"...","value":...}     — at Stop()
///   {"type":"trace_end","t_us":...}

namespace restune {
namespace obs {

class Tracer {
 public:
  /// The process-wide tracer. Never destroyed.
  static Tracer* Global();

  /// Opens `path` for writing (truncating) and enables span recording.
  /// Returns false (leaving tracing disabled) if the file cannot be
  /// opened. Not thread-safe against concurrent Start/Stop; call from
  /// the main thread before spinning up a session.
  bool Start(const std::string& path);

  /// Flushes the metrics registry into the trace as counter/gauge lines,
  /// writes the trace_end record, closes the file, and disables
  /// recording. No-op when not started.
  void Stop();

  /// Acquire pairs with the release store in Start(): a thread that sees
  /// `true` also sees the epoch_ written before tracing was enabled, so
  /// lock-free NowMicros() reads a fully initialized epoch.
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Appends a span record. Called by TraceSpan's destructor; `t_us` is
  /// the span start offset relative to Start() in microseconds.
  void RecordSpan(const char* name, int64_t t_us, int64_t dur_us, int depth);

  /// Appends a pre-formatted JSON object line (no trailing newline).
  /// Used for event records like checkpoint writes and fault outcomes.
  void RecordLine(const std::string& json_object);

  /// Microseconds elapsed since Start() on the monotonic clock.
  int64_t NowMicros() const;

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  /// Written by Start() before the release store to `enabled_` and read
  /// lock-free by NowMicros() on the span hot path; the acquire load in
  /// enabled() publishes it. Start/Stop themselves are main-thread-only
  /// (see Start), so the field never changes while spans are live.
  std::chrono::steady_clock::time_point epoch_;
  Mutex mu_;  // guards the file handle and write ordering
  std::FILE* file_ GUARDED_BY(mu_) = nullptr;
  int64_t lines_since_flush_ GUARDED_BY(mu_) = 0;
};

/// Per-thread span bookkeeping: a small dense thread id (assigned on
/// first traced span) and the current nesting depth.
struct TraceThreadState {
  int tid = -1;
  int depth = 0;
};
TraceThreadState* ThisThreadTraceState();

/// RAII span. Construct with a string *literal* (the pointer is kept,
/// not copied). When the tracer is disabled, construction is a single
/// relaxed load and destruction a branch on a null pointer.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    Tracer* tracer = Tracer::Global();
    if (tracer->enabled()) Begin(tracer, name);
  }
  ~TraceSpan() {
    if (tracer_ != nullptr) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(Tracer* tracer, const char* name);
  void End();

  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  int64_t start_us_ = 0;
};

}  // namespace obs
}  // namespace restune

#if defined(RESTUNE_OBS_DISABLED)

/// Compile-time kill switch: the name expression stays syntactically
/// checked but no object is created and no code is generated.
#define RESTUNE_TRACE_SPAN(name) static_cast<void>(sizeof(name))

#else

#define RESTUNE_TRACE_SPAN_CONCAT_INNER(a, b) a##b
#define RESTUNE_TRACE_SPAN_CONCAT(a, b) RESTUNE_TRACE_SPAN_CONCAT_INNER(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define RESTUNE_TRACE_SPAN(name)                                      \
  ::restune::obs::TraceSpan RESTUNE_TRACE_SPAN_CONCAT(restune_span_,  \
                                                      __LINE__)(name)

#endif  // RESTUNE_OBS_DISABLED

#endif  // RESTUNE_OBS_TRACE_H_
