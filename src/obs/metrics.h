#ifndef RESTUNE_OBS_METRICS_H_
#define RESTUNE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

// Leaf headers (tools/layering.json): header-only, include nothing, so
// using them here does not give src/obs an internal module dependency.
#include "common/mutex.h"
#include "common/thread_annotations.h"

/// Metrics layer of the observability subsystem (docs/OBSERVABILITY.md).
///
/// Three instrument kinds, all process-global and always live:
///
///   * `Counter`    — monotonically increasing int64 (events, items).
///   * `Gauge`      — last-written double (ensemble weights, queue depth).
///   * `Histogram`  — fixed log2-bucket distribution of doubles
///                    (durations in seconds, batch sizes).
///
/// Hot-path cost model: an increment is one relaxed atomic add on a
/// cache-line-padded per-thread shard — no locks, no allocation, no clock,
/// and (by the obs-discipline lint rule) no RNG, so instrumented code stays
/// bit-identical to uninstrumented code for any thread count. Shards are
/// merged only on read (`Value()`, `PrometheusText()`), which is the slow
/// path and may lock the registry.
///
/// Handles returned by `MetricsRegistry` are stable for the process
/// lifetime; instrumented code looks a handle up once (static local or
/// member) and increments through the pointer thereafter.

namespace restune {
namespace obs {

/// Shard count for per-thread striping. A power of two; threads hash onto
/// shards round-robin by creation order, so up-to-16-thread pools see no
/// sharing at all and wider pools degrade gracefully to light sharing.
inline constexpr size_t kMetricShards = 16;

/// Index of the calling thread's shard (assigned once per thread).
size_t ThisThreadShard();

namespace internal {

/// One cache line per shard so concurrent increments from different
/// threads never contend on the same line.
struct alignas(64) ShardedCell {
  std::atomic<int64_t> value{0};
};

}  // namespace internal

/// Monotonic event counter.
class Counter {
 public:
  /// Adds `n` (≥ 0) to the calling thread's shard. Lock-free.
  void Add(int64_t n = 1) {
    shards_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all shards. Read path only.
  int64_t Value() const;

  /// Overwrites the counter with `value` (shard 0 takes it all). Used by
  /// checkpoint restore and tests; not a hot-path operation.
  void Set(int64_t value);

 private:
  std::array<internal::ShardedCell, kMetricShards> shards_;
};

/// Last-value gauge. A single atomic double (stored as bits): gauges are
/// written by one logical owner (e.g. the meta-learner's weight pass), so
/// striping would only blur "last value" semantics.
class Gauge {
 public:
  void Set(double value);
  double Value() const;

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Fixed log2-bucket histogram. Bucket `i` covers
/// `[kHistogramMin * 2^i, kHistogramMin * 2^(i+1))`; values below the
/// first boundary land in bucket 0, values at or above the last boundary
/// in the overflow bucket. With `kHistogramMin = 1e-6` and 40 buckets the
/// range spans one microsecond to ~12 minutes — wide enough for both span
/// durations and backoff sleeps — and every process uses the exact same
/// layout, so dumps from different runs line up bucket for bucket.
inline constexpr double kHistogramMin = 1e-6;
inline constexpr size_t kHistogramBuckets = 40;

class Histogram {
 public:
  /// Records one observation. Lock-free: one relaxed add on the bucket
  /// cell plus two on the count/sum cells of the calling thread's shard.
  void Observe(double value);

  /// Bucket index for `value` under the fixed layout (overflow bucket is
  /// index kHistogramBuckets). Exposed for tests and readers.
  static size_t BucketIndex(double value);
  /// Upper boundary of bucket `i` (inclusive-exclusive layout).
  static double BucketUpperBound(size_t i);

  int64_t Count() const;
  double Sum() const;
  /// Per-bucket counts, size kHistogramBuckets + 1 (last = overflow).
  std::vector<int64_t> BucketCounts() const;

  /// Zeroes every shard. Not atomic with respect to concurrent Observe
  /// calls; test/maintenance path only.
  void Reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, kHistogramBuckets + 1> buckets{};
    std::atomic<int64_t> count{0};
    std::atomic<uint64_t> sum_bits{0};  // double bits, CAS-accumulated
  };
  std::array<Shard, kMetricShards> shards_;
};

/// A merged point-in-time view of every counter (used by checkpointing;
/// gauges and histograms are transient by design).
using CounterSnapshot = std::vector<std::pair<std::string, int64_t>>;

/// Name → instrument registry. Lookup is mutex-guarded (cold path);
/// returned handles are stable for the process lifetime.
///
/// Naming convention (docs/OBSERVABILITY.md): `restune_<area>_<what>`
/// with `_total` for counters and an optional trailing `{key="value"}`
/// label pair baked into the name, e.g.
/// `restune_eval_faults_total{kind="crash"}`.
class MetricsRegistry {
 public:
  /// The process-wide registry. Never destroyed.
  static MetricsRegistry* Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// All counters with their merged values, sorted by name.
  CounterSnapshot Counters() const;

  /// All gauges with their current values, sorted by name.
  std::vector<std::pair<std::string, double>> Gauges() const;

  /// Overwrites the named counters with the snapshot values, creating any
  /// that do not exist yet. Counters not named in the snapshot are zeroed:
  /// a restore rewinds the whole counter state to the snapshot, so a
  /// resumed session's numbers match the uninterrupted run's.
  void RestoreCounters(const CounterSnapshot& snapshot);

  /// Zeroes every counter and histogram and clears every gauge value
  /// (instruments stay registered; handles stay valid). Test isolation.
  void ResetForTest();

  /// Prometheus text exposition of every instrument: `# TYPE` comments,
  /// counter/gauge sample lines, and cumulative `_bucket{le="..."}` /
  /// `_sum` / `_count` lines for histograms. Labels baked into names are
  /// emitted as-is (they are already in Prometheus form).
  std::string PrometheusText() const;

 private:
  MetricsRegistry() = default;

  /// Guards the name→instrument maps only; the instruments themselves are
  /// lock-free and the returned handles outlive the lock by design.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace restune

#endif  // RESTUNE_OBS_METRICS_H_
