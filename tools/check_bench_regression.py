#!/usr/bin/env python3
"""CI perf gate: compare the current BENCH_<PR>.json against
bench/baseline.json.

Both files are JSON lines in the bench-record schema (see
tools/run_ci_bench.py):

    {"bench": ..., "n": ..., "threads": ..., "cpu_ms_median": ...,
     "iterations": ...}

Records are matched on (bench, n, threads). The gate fails when any
matched benchmark's median CPU time regressed by more than the threshold
(default 15%), or when a baseline benchmark is missing from the current
run (a silently dropped benchmark must not pass the gate). Current
benchmarks with no baseline entry are reported but do not fail — that is
the expected state of a PR that adds a benchmark; the follow-up baseline
refresh (docs/OBSERVABILITY.md) records them.

A baseline record may additionally carry ``cpu_ms_max``, an absolute
CPU-time ceiling in ms. The gate fails when the current median exceeds
it, regardless of the relative threshold — this pins hard latency
budgets (e.g. "approx suggest at n=10k stays under 1000 ms") that a
slowly drifting baseline must never relax.

Usage:
    check_bench_regression.py --baseline bench/baseline.json \
                              --current BENCH_<PR>.json [--threshold 0.15]
    check_bench_regression.py --self-test

A missing or malformed input file is a usage/setup problem, not a perf
regression: the gate prints one actionable message and exits 2 (no
traceback), distinct from exit 1 (a real regression).

Stdlib only.
"""

import argparse
import json
import sys


class BenchInputError(Exception):
    """A missing or malformed bench file — setup problem, not a regression."""


def load_records(path):
    """Reads bench-record JSON lines (or a JSON array) into a keyed dict.

    Raises BenchInputError with an actionable message when the file is
    missing, not valid JSON, or its rows do not match the schema.
    """
    try:
        with open(path) as f:
            text = f.read()
    except FileNotFoundError:
        raise BenchInputError(
            "%s: file not found.\n"
            "  - If this is the current run's artifact, the benchmark step "
            "did not produce it; check the run_ci_bench.py invocation "
            "(--out must match).\n"
            "  - If this is bench/baseline.json, refresh it as described "
            "in docs/OBSERVABILITY.md." % path)
    try:
        stripped = text.lstrip()
        if stripped.startswith("["):
            records = json.loads(stripped)
        else:
            records = [json.loads(line) for line in text.splitlines()
                       if line.strip()]
    except json.JSONDecodeError as err:
        raise BenchInputError(
            "%s: not valid JSON lines (%s).\n"
            "  Regenerate it with tools/run_ci_bench.py; do not hand-edit "
            "bench artifacts." % (path, err))
    if not isinstance(records, list) or not all(
            isinstance(r, dict) for r in records):
        raise BenchInputError(
            "%s: expected a JSON array or JSON lines of record objects "
            "in the tools/run_ci_bench.py schema." % path)
    keyed = {}
    for record in records:
        for field in ("bench", "n", "threads", "cpu_ms_median"):
            if field not in record:
                raise BenchInputError(
                    "%s: record missing the %r field: %r\n"
                    "  Rows must match the tools/run_ci_bench.py schema "
                    "(bench, n, threads, cpu_ms_median, iterations)." %
                    (path, field, record))
        key = (record["bench"], record["n"], record["threads"])
        if key in keyed:
            raise BenchInputError(
                "%s: duplicate benchmark key %r.\n"
                "  Each (bench, n, threads) row must appear once; "
                "regenerate the file with tools/run_ci_bench.py." %
                (path, key))
        keyed[key] = record
    return keyed


def compare(baseline, current, threshold):
    """Returns (report_lines, failures) for the two keyed record dicts."""
    lines = []
    failures = []
    header = "%-44s %10s %10s %8s  %s" % (
        "benchmark (n, threads)", "base ms", "cur ms", "delta", "verdict")
    lines.append(header)
    lines.append("-" * len(header))
    for key in sorted(set(baseline) | set(current)):
        label = "%s (%d, %d)" % key
        base = baseline.get(key)
        cur = current.get(key)
        if base is None:
            lines.append("%-44s %10s %10.2f %8s  NEW (no baseline)" %
                         (label, "-", cur["cpu_ms_median"], "-"))
            continue
        if cur is None:
            lines.append("%-44s %10.2f %10s %8s  MISSING from current run" %
                         (label, base["cpu_ms_median"], "-", "-"))
            failures.append("%s: present in baseline but not in current run"
                            % label)
            continue
        base_ms = float(base["cpu_ms_median"])
        cur_ms = float(cur["cpu_ms_median"])
        if base_ms <= 0.0:
            failures.append("%s: non-positive baseline %.3f ms" %
                            (label, base_ms))
            continue
        delta = cur_ms / base_ms - 1.0
        regressed = delta > threshold
        over_ceiling = False
        if "cpu_ms_max" in base:
            ceiling = float(base["cpu_ms_max"])
            over_ceiling = cur_ms > ceiling
        verdict = "ok"
        if over_ceiling:
            verdict = "OVER CEILING"
        elif regressed:
            verdict = "REGRESSED"
        lines.append("%-44s %10.2f %10.2f %+7.1f%%  %s" %
                     (label, base_ms, cur_ms, 100.0 * delta, verdict))
        if regressed:
            failures.append(
                "%s: %.2f ms -> %.2f ms (%+.1f%%, threshold +%.0f%%)" %
                (label, base_ms, cur_ms, 100.0 * delta, 100.0 * threshold))
        if over_ceiling:
            failures.append(
                "%s: %.2f ms exceeds absolute ceiling cpu_ms_max=%.2f ms" %
                (label, cur_ms, float(base["cpu_ms_max"])))
    return lines, failures


def self_test():
    """Exercises the gate logic on synthetic records."""
    def rec(bench, n, threads, ms):
        return {"bench": bench, "n": n, "threads": threads,
                "cpu_ms_median": ms, "iterations": 5}

    def keyed(records):
        return {(r["bench"], r["n"], r["threads"]): r for r in records}

    base = keyed([rec("BM_A", 50, 1, 100.0), rec("BM_B", 15, 4, 200.0)])

    # Within threshold (+10%) passes.
    _, failures = compare(
        base, keyed([rec("BM_A", 50, 1, 110.0), rec("BM_B", 15, 4, 199.0)]),
        threshold=0.15)
    assert not failures, failures

    # Beyond threshold (+20%) fails, and names the offender.
    _, failures = compare(
        base, keyed([rec("BM_A", 50, 1, 120.0), rec("BM_B", 15, 4, 200.0)]),
        threshold=0.15)
    assert len(failures) == 1 and "BM_A" in failures[0], failures

    # Exactly at threshold passes (gate is strict-greater).
    _, failures = compare(base,
                          keyed([rec("BM_A", 50, 1, 115.0),
                                 rec("BM_B", 15, 4, 230.0)]),
                          threshold=0.15)
    assert not failures, failures

    # A benchmark missing from the current run fails.
    _, failures = compare(base, keyed([rec("BM_A", 50, 1, 100.0)]),
                          threshold=0.15)
    assert len(failures) == 1 and "BM_B" in failures[0], failures

    # A new benchmark with no baseline is reported but does not fail.
    lines, failures = compare(
        base, keyed([rec("BM_A", 50, 1, 100.0), rec("BM_B", 15, 4, 200.0),
                     rec("BM_C", 1, 1, 5.0)]), threshold=0.15)
    assert not failures, failures
    assert any("NEW" in line for line in lines), lines

    # An improvement (faster) passes.
    _, failures = compare(
        base, keyed([rec("BM_A", 50, 1, 50.0), rec("BM_B", 15, 4, 180.0)]),
        threshold=0.15)
    assert not failures, failures

    # cpu_ms_max is an absolute ceiling: under it passes even when the
    # relative delta would not have fired; over it fails even within the
    # relative threshold.
    capped = keyed([rec("BM_A", 50, 1, 100.0)])
    capped[("BM_A", 50, 1)]["cpu_ms_max"] = 105.0
    _, failures = compare(capped, keyed([rec("BM_A", 50, 1, 104.0)]),
                          threshold=0.15)
    assert not failures, failures
    _, failures = compare(capped, keyed([rec("BM_A", 50, 1, 106.0)]),
                          threshold=0.15)
    assert len(failures) == 1 and "ceiling" in failures[0], failures

    # Both gates can fire on one record (big regression over the ceiling).
    _, failures = compare(capped, keyed([rec("BM_A", 50, 1, 150.0)]),
                          threshold=0.15)
    assert len(failures) == 2, failures

    # Input problems surface as BenchInputError with an actionable message
    # (main() turns these into exit code 2, not a traceback).
    import os
    import tempfile

    def expect_input_error(path, *tokens):
        try:
            load_records(path)
        except BenchInputError as err:
            for token in tokens:
                assert token in str(err), (token, str(err))
        else:
            raise AssertionError("expected BenchInputError for %s" % path)

    expect_input_error("/nonexistent/BENCH_0.json", "file not found",
                       "run_ci_bench.py")

    def temp_file(contents):
        fd, path = tempfile.mkstemp(suffix=".json", prefix="bench_gate_")
        with os.fdopen(fd, "w") as f:
            f.write(contents)
        return path

    paths = []
    try:
        paths.append(temp_file("{not json\n"))
        expect_input_error(paths[-1], "not valid JSON")
        paths.append(temp_file('{"bench": "BM_A", "n": 50}\n'))
        expect_input_error(paths[-1], "missing the", "cpu_ms_median")
        row = ('{"bench": "BM_A", "n": 50, "threads": 1, '
               '"cpu_ms_median": 1.0}\n')
        paths.append(temp_file(row + row))
        expect_input_error(paths[-1], "duplicate benchmark key")
        paths.append(temp_file('"just a string"\n'))
        expect_input_error(paths[-1], "record objects")
        # main() maps input errors to exit code 2, distinct from a real
        # regression's exit code 1.
        good = temp_file(row)
        paths.append(good)
        assert main(["--baseline", "/nonexistent/baseline.json",
                     "--current", good]) == 2
    finally:
        for path in paths:
            os.unlink(path)

    print("check_bench_regression self-test OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline")
    parser.add_argument("--current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed relative slowdown (default 0.15)")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required "
                     "(or use --self-test)")

    try:
        baseline = load_records(args.baseline)
        current = load_records(args.current)
    except BenchInputError as err:
        print("error: %s" % err, file=sys.stderr)
        return 2
    lines, failures = compare(baseline, current, args.threshold)
    print("\n".join(lines))
    if failures:
        print("\nFAIL: %d benchmark(s) regressed beyond +%.0f%%:" %
              (len(failures), 100.0 * args.threshold))
        for failure in failures:
            print("  " + failure)
        print("\nIf the slowdown is intended, refresh bench/baseline.json "
              "(see docs/OBSERVABILITY.md).")
        return 1
    print("\nOK: no benchmark regressed beyond +%.0f%%." %
          (100.0 * args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
