#!/usr/bin/env bash
# Runs clang-tidy (config: repo .clang-tidy) over src/ using the compile
# database exported by CMake. Usage:
#
#   tools/run_clang_tidy.sh [build-dir]
#
# The build dir must have been configured with CMAKE_EXPORT_COMPILE_COMMANDS
# (the top-level CMakeLists turns it on unconditionally). When clang-tidy is
# not installed (the default dev container ships gcc only), the check SKIPS
# with exit 0; CI installs clang-tidy and gets the real verdict.
set -u -o pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: $CLANG_TIDY not found; skipping (install clang-tidy to enable)"
  exit 0
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing;" \
       "configure with cmake first" >&2
  exit 2
fi

# run-clang-tidy parallelizes across the compile database when available;
# fall back to a serial loop otherwise.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$CLANG_TIDY" -p "$BUILD_DIR" -quiet \
      "$(pwd)/src/.*\.cc$"
  exit $?
fi

status=0
while IFS= read -r -d '' file; do
  "$CLANG_TIDY" -p "$BUILD_DIR" --quiet "$file" || status=1
done < <(find src -name '*.cc' -print0 | sort -z)
exit "$status"
