#!/usr/bin/env python3
"""Self-test for restune_lint.py against small fixture snippets.

Runs under pytest (`pytest tools/restune_lint_test.py`) or standalone
(`python3 tools/restune_lint_test.py`); the standalone runner executes every
`test_*` function and reports pass/fail, so CI does not need pytest.

Each test materializes a miniature repo layout in a temp directory and runs
the real `run_lint` entry point over it, asserting on (rule, line) pairs —
the same code path the CLI uses, so the fixtures double as documentation of
what each rule does and does not flag.
"""

import os
import sys
import tempfile
import textwrap

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import restune_lint  # noqa: E402


class FixtureTree:
    """Temp directory that mimics the repo layout for run_lint."""

    def __init__(self):
        self._dir = tempfile.TemporaryDirectory(prefix="restune_lint_test_")
        self.root = self._dir.name

    def write(self, relpath, content):
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(textwrap.dedent(content))
        return path

    def lint(self, *subdirs, allowlist=None):
        paths = [os.path.join(self.root, d) for d in (subdirs or ("src",))]
        findings = restune_lint.run_lint(paths, self.root, allowlist)
        return [(f.rule, f.line, f.path) for f in findings]

    def cleanup(self):
        self._dir.cleanup()


GUARDED = """\
#ifndef RESTUNE_{token}_H_
#define RESTUNE_{token}_H_
{body}
#endif  // RESTUNE_{token}_H_
"""


def guarded(token, body=""):
    return GUARDED.format(token=token, body=body)


def rules_of(findings):
    return sorted({rule for rule, _line, _path in findings})


def test_clean_file_has_no_findings():
    t = FixtureTree()
    try:
        t.write("src/gp/clean.h", guarded("GP_CLEAN", """\

            namespace restune {
            inline double Twice(double x) { return 2.0 * x; }
            }  // namespace restune
            """))
        assert t.lint() == []
    finally:
        t.cleanup()


def test_rng_discipline_flags_adhoc_randomness():
    t = FixtureTree()
    try:
        t.write("src/bo/sampler.cc", """\
            #include <cstdlib>
            int Draw() {
              return rand();
            }
            unsigned Seed() {
              std::random_device rd;
              return rd() + time(nullptr);
            }
            """)
        findings = t.lint()
        assert rules_of(findings) == ["rng-discipline"]
        assert [line for _r, line, _p in findings] == [3, 6, 7]
    finally:
        t.cleanup()


def test_rng_discipline_exempts_common_rng():
    t = FixtureTree()
    try:
        t.write("src/common/rng.cc", """\
            unsigned Seed() {
              std::random_device rd;
              return rd();
            }
            """)
        assert t.lint() == []
    finally:
        t.cleanup()


def test_naked_new_and_delete_are_flagged():
    t = FixtureTree()
    try:
        t.write("src/tuner/owner.cc", """\
            struct T {};
            T* Make() { return new T(); }
            void Free(T* t) { delete t; }
            """)
        findings = t.lint()
        assert rules_of(findings) == ["naked-new"]
        assert len(findings) == 2
    finally:
        t.cleanup()


def test_make_unique_and_deleted_members_are_not_flagged():
    t = FixtureTree()
    try:
        t.write("src/tuner/ok.cc", """\
            #include <memory>
            struct T {
              T(const T&) = delete;
              T& operator=(const T&) = delete;
            };
            std::unique_ptr<int> Make() { return std::make_unique<int>(3); }
            """)
        assert t.lint() == []
    finally:
        t.cleanup()


def test_raw_thread_flagged_outside_thread_pool():
    t = FixtureTree()
    try:
        t.write("src/service/worker.cc", """\
            #include <thread>
            void Spawn() { std::thread t([] {}); t.join(); }
            """)
        t.write("src/common/thread_pool.cc", """\
            #include <thread>
            void Pool() { std::thread t([] {}); t.join(); }
            """)
        findings = t.lint()
        assert rules_of(findings) == ["raw-thread"]
        assert all("service" in path for _r, _l, path in findings)
    finally:
        t.cleanup()


def test_no_float_in_numeric_core_only():
    t = FixtureTree()
    try:
        t.write("src/linalg/vec.cc", "float Sum(float a, float b);\n")
        t.write("src/gp/model.cc", "void Fit(float noise);\n")
        t.write("src/service/wire.cc", "float Encode(double x);\n")
        findings = t.lint()
        assert rules_of(findings) == ["no-float"]
        assert sorted(path for _r, _l, path in findings) == [
            "src/gp/model.cc",
            "src/linalg/vec.cc",
        ]
    finally:
        t.cleanup()


def test_simd_confinement_flags_intrinsics_outside_simd_dir():
    t = FixtureTree()
    try:
        t.write("src/gp/fast_kernel.cc", """\
            #include <immintrin.h>
            double Sum(const double* a) {
              __m256d acc = _mm256_loadu_pd(a);
              return _mm256_cvtsd_f64(acc);
            }
            """)
        findings = t.lint()
        assert rules_of(findings) == ["simd-confinement"]
        # Line 1: the include; lines 3-4: intrinsic tokens (one finding per
        # line — the scan reports the first token it sees).
        assert [line for _r, line, _p in findings] == [1, 3, 4]
    finally:
        t.cleanup()


def test_simd_confinement_allows_simd_dir_and_dispatch_callers():
    t = FixtureTree()
    try:
        t.write("src/linalg/simd/simd_avx2.cc", """\
            #include <immintrin.h>
            double Sum(const double* a) {
              __m256d acc = _mm256_loadu_pd(a);
              return _mm256_cvtsd_f64(acc);
            }
            """)
        t.write("src/gp/caller.cc", """\
            #include "linalg/simd/simd.h"
            double Dot(const double* a, const double* b) {
              return restune::simd::Dot(a, b, 8);
            }
            """)
        assert t.lint() == []
    finally:
        t.cleanup()


def test_naked_new_ignores_preprocessor_lines():
    t = FixtureTree()
    try:
        t.write("src/linalg/alloc.cc", """\
            #include <new>
            int x = 0;
            """)
        assert t.lint() == []
    finally:
        t.cleanup()


def test_obs_discipline_flags_wall_clock_outside_obs():
    t = FixtureTree()
    try:
        t.write("src/tuner/timer.cc", """\
            #include <chrono>
            #include <sys/time.h>
            long Wall() {
              auto t = std::chrono::system_clock::now();
              auto h = std::chrono::high_resolution_clock::now();
              struct timeval tv;
              gettimeofday(&tv, nullptr);
              return tv.tv_sec;
            }
            """)
        findings = t.lint()
        assert rules_of(findings) == ["obs-discipline"]
        assert [line for _r, line, _p in findings] == [4, 5, 7]
    finally:
        t.cleanup()


def test_obs_discipline_allows_wall_clock_inside_obs():
    t = FixtureTree()
    try:
        t.write("src/obs/wallclock.cc", """\
            #include <chrono>
            long Wall() {
              auto t = std::chrono::system_clock::now();
              return 0;
            }
            """)
        assert t.lint() == []
    finally:
        t.cleanup()


def test_obs_discipline_steady_clock_is_fine_everywhere():
    t = FixtureTree()
    try:
        t.write("src/tuner/mono.cc", """\
            #include <chrono>
            long Mono() {
              auto t = std::chrono::steady_clock::now();
              return 0;
            }
            """)
        assert t.lint() == []
    finally:
        t.cleanup()


def test_obs_discipline_flags_rng_inside_obs():
    t = FixtureTree()
    try:
        t.write("src/obs/sampler.cc", """\
            #include "common/rng.h"
            double Jitter(restune::Rng* rng) {
              return rng->Uniform();
            }
            """)
        findings = t.lint()
        assert rules_of(findings) == ["obs-discipline"]
        # Line 1: the include (raw-line scan — the quoted path is blanked
        # in the stripped code); line 2: the Rng use.
        assert [line for _r, line, _p in findings] == [1, 2]
    finally:
        t.cleanup()


def test_ignored_status_flagged_only_for_unambiguous_names():
    t = FixtureTree()
    try:
        t.write("src/meta/repo.h", guarded("META_REPO", """\

            namespace restune {
            class Repo {
             public:
              Status AddTask(int task);
              Status Observe(int x);
            };
            class Agent {
             public:
              void Observe(int x);  // same name, void: ambiguous
            };
            }  // namespace restune
            """))
        t.write("src/meta/use.cc", """\
            #include "meta/repo.h"
            void Use(restune::Repo* r, restune::Agent* a) {
              r->AddTask(1);
              a->Observe(2);
              Status s = r->AddTask(3);
              (void)s;
            }
            """)
        findings = t.lint()
        ignored = [(r, l, p) for r, l, p in findings if r == "ignored-status"]
        assert ignored == [("ignored-status", 3, "src/meta/use.cc")]
    finally:
        t.cleanup()


def test_include_guard_must_match_path():
    t = FixtureTree()
    try:
        t.write("src/gp/kernel.h", guarded("GP_WRONG"))
        t.write("src/gp/pragma.h", "#pragma once\nint x;\n")
        t.write("src/gp/right.h", guarded("GP_RIGHT"))
        findings = t.lint()
        assert rules_of(findings) == ["include-guard"]
        assert sorted(path for _r, _l, path in findings) == [
            "src/gp/kernel.h",
            "src/gp/pragma.h",
        ]
    finally:
        t.cleanup()


def test_expected_guard_strips_leading_src():
    assert restune_lint.expected_guard("src/gp/kernel.h") == \
        "RESTUNE_GP_KERNEL_H_"
    assert restune_lint.expected_guard("tests/test_util.h") == \
        "RESTUNE_TESTS_TEST_UTIL_H_"


def test_comments_and_strings_do_not_trigger_rules():
    t = FixtureTree()
    try:
        t.write("src/bo/doc.cc", """\
            // rand() in a comment, and `new Foo` too.
            /* std::thread worker; */
            const char* kMsg = "call rand() and new and delete";
            int x = 0;
            """)
        assert t.lint() == []
    finally:
        t.cleanup()


def test_inline_suppression_on_line_or_line_above():
    t = FixtureTree()
    try:
        t.write("src/tuner/leak.cc", """\
            struct P {};
            P* A() { return new P(); }  // restune-lint: allow(naked-new) -- test
            // restune-lint: allow(naked-new) -- marker on the line above
            P* B() { return new P(); }
            P* C() { return new P(); }
            """)
        findings = t.lint()
        assert [(r, l) for r, l, _p in findings] == [("naked-new", 5)]
    finally:
        t.cleanup()


def test_net_discipline_flags_raw_sockets_outside_net():
    t = FixtureTree()
    try:
        t.write("src/service/raw_transport.cc", """\
            #include <sys/socket.h>
            #include <poll.h>
            int Open() {
              int fd = ::socket(2, 1, 0);
              char c;
              ::read(fd, &c, 1);
              return fd;
            }
            """)
        findings = t.lint("src")
        lines = sorted((line, rule) for rule, line, _path in findings
                       if rule == "net-discipline")
        # Two headers + two naked syscalls.
        assert [l for l, _ in lines] == [1, 2, 4, 6], findings
    finally:
        t.cleanup()


def test_net_discipline_exempts_src_net_and_flags_stray_eintr():
    t = FixtureTree()
    try:
        # The net module itself is where raw sockets are supposed to live;
        # socket.{h,cc} is additionally the one home of EINTR.
        t.write("src/net/socket.cc", """\
            #include <sys/socket.h>
            #include <cerrno>
            #include "net/socket.h"
            int RawOpen() {
              int rc;
              do { rc = ::socket(2, 1, 0); } while (rc < 0 && errno == EINTR);
              return rc;
            }
            """)
        assert t.lint("src") == []
        # A hand-rolled EINTR loop elsewhere in src/net is still a finding:
        # the retry must go through RetryEintr.
        t.write("src/net/wire_loop.cc", """\
            #include <cerrno>
            int Spin(int fd) {
              int rc;
              do { rc = Do(fd); } while (rc < 0 && errno == EINTR);
              return rc;
            }
            """)
        findings = t.lint("src")
        assert [(r, l) for r, l, _p in findings] == [("net-discipline", 4)], \
            findings
        # ... and so is one outside src/net entirely.
        t.write("src/net/wire_loop.cc", "int Quiet() { return 0; }\n")
        t.write("src/tuner/retry.cc", """\
            #include <cerrno>
            int Spin(int fd) {
              int rc;
              do { rc = Do(fd); } while (rc < 0 && errno == EINTR);
              return rc;
            }
            """)
        findings = t.lint("src")
        assert [(r, l) for r, l, _p in findings] == [("net-discipline", 4)], \
            findings
    finally:
        t.cleanup()


def test_net_discipline_ignores_qualified_names():
    t = FixtureTree()
    try:
        # std::bind / my::ns::connect are qualified lookups, not syscalls.
        t.write("src/tuner/callbacks.cc", """\
            #include <functional>
            void Hook(std::function<void()>* out) {
              *out = std::bind(&Hook, out);
              net::Socket sock = net::ConnectTcp("127.0.0.1", 1).value();
            }
            """)
        assert t.lint("src") == []
    finally:
        t.cleanup()


def test_allowlist_file_suppresses_by_rule_and_glob():
    t = FixtureTree()
    try:
        t.write("src/tuner/leak.cc", "struct P {};\nP* A() { return new P(); }\n")
        allow = t.write("allow.txt",
                        "naked-new src/tuner/*.cc  # fixture exception\n")
        assert t.lint(allowlist=allow) == []
        # A non-matching rule must not suppress.
        allow2 = t.write("allow2.txt", "no-float src/tuner/*.cc  # wrong rule\n")
        assert rules_of(t.lint(allowlist=allow2)) == ["naked-new"]
    finally:
        t.cleanup()


def test_unbounded_wait_flags_sleeps_and_naked_wait_in_tests():
    t = FixtureTree()
    try:
        t.write("tests/slow_test.cc", """\
            #include <chrono>
            #include <thread>
            void Settle() {
              sleep(1);
              usleep(500);
              std::this_thread::sleep_for(std::chrono::seconds(1));
            }
            void Block(std::condition_variable& cv,
                       std::unique_lock<std::mutex>& lk) {
              cv.wait(lk);
            }
            """)
        findings = t.lint("tests")
        assert rules_of(findings) == ["unbounded-wait"]
        assert [line for _r, line, _p in findings] == [4, 5, 6, 10]
    finally:
        t.cleanup()


def test_unbounded_wait_allows_bounded_waits_and_non_test_code():
    t = FixtureTree()
    try:
        t.write("tests/bounded_test.cc", """\
            #include <chrono>
            bool Bounded(std::condition_variable& cv,
                         std::unique_lock<std::mutex>& lk) {
              using namespace std::chrono_literals;
              return cv.wait_for(lk, 5s) == std::cv_status::no_timeout &&
                     cv.wait_until(lk, Deadline()) == std::cv_status::no_timeout;
            }
            """)
        # The rule is scoped to tests/: a sleep in src/ is another rule's
        # business (or legitimate), not this one's.
        t.write("src/dbsim/pacing.cc", """\
            #include <thread>
            void Pace() { std::this_thread::sleep_for(Interval()); }
            """)
        assert t.lint("tests", "src") == []
    finally:
        t.cleanup()


def test_unbounded_wait_honors_inline_suppression():
    t = FixtureTree()
    try:
        t.write("tests/suppressed_test.cc", """\
            #include <unistd.h>
            // restune-lint: allow(unbounded-wait) -- exercising the fixture
            void Nap() { sleep(1); }
            void Doze() { usleep(10); }
            """)
        findings = t.lint("tests")
        assert [(r, l) for r, l, _p in findings] == [("unbounded-wait", 4)]
    finally:
        t.cleanup()


def test_lock_discipline_flags_naked_locks_and_std_guards():
    t = FixtureTree()
    try:
        t.write("src/meta/store.cc", """\
            #include <mutex>
            void Touch(std::mutex& mu, int& v) {
              mu.lock();
              ++v;
              mu.unlock();
            }
            void Guarded(std::mutex& mu, int& v) {
              std::lock_guard<std::mutex> lock(mu);
              ++v;
            }
            """)
        findings = t.lint()
        assert rules_of(findings) == ["lock-discipline"]
        assert [line for _r, line, _p in findings] == [3, 5, 8]
    finally:
        t.cleanup()


def test_lock_discipline_exempts_mutex_wrapper_and_tests():
    t = FixtureTree()
    try:
        # The wrapper itself is where the naked calls are supposed to live.
        t.write("src/common/mutex.h", guarded("COMMON_MUTEX", """\

            #include <mutex>
            namespace restune {
            class Mutex {
             public:
              void lock() { mu_.lock(); }
              void unlock() { mu_.unlock(); }
             private:
              std::mutex mu_;
            };
            }  // namespace restune
            """))
        # Tests may use std primitives directly for interop fixtures.
        t.write("tests/interop_test.cc", """\
            #include <mutex>
            void Fixture(std::mutex& mu) { std::lock_guard<std::mutex> l(mu); }
            """)
        assert t.lint("src", "tests") == []
    finally:
        t.cleanup()


def test_memory_order_requires_explicit_ordering_in_lockfree_scopes():
    t = FixtureTree()
    try:
        t.write("src/obs/counter.cc", """\
            #include <atomic>
            void Bump(std::atomic<int>& c) {
              c.fetch_add(1);
              c.fetch_add(1, std::memory_order_relaxed);
              c.store(0,
                      std::memory_order_release);
              (void)c.load();
            }
            """)
        findings = t.lint()
        assert rules_of(findings) == ["memory-order"]
        # The multi-line store with an explicit order does not trip; the
        # bare fetch_add and load do.
        assert [line for _r, line, _p in findings] == [3, 7]
    finally:
        t.cleanup()


def test_memory_order_ignores_modules_without_lockfree_paths():
    t = FixtureTree()
    try:
        t.write("src/tuner/flag.cc", """\
            #include <atomic>
            void Set(std::atomic<bool>& f) { f.store(true); }
            """)
        assert t.lint() == []
    finally:
        t.cleanup()


LAYERING_FIXTURE = """\
{
  "modules": {
    "obs": [],
    "common": ["obs"],
    "gp": ["common"]
  },
  "leaf_headers": ["common/leaf.h"]
}
"""


def test_layering_enforces_the_declared_dag():
    t = FixtureTree()
    try:
        t.write("tools/layering.json", LAYERING_FIXTURE)
        t.write("src/common/util.cc", """\
            #include "common/util.h"
            #include "obs/metrics.h"
            #include "gp/kernel.h"
            #include <vector>
            """)
        findings = t.lint()
        # Own module and declared deps pass; the upward include (gp) and
        # system headers behave as expected.
        assert [(r, line) for r, line, _p in findings] == [("layering", 3)]
    finally:
        t.cleanup()


def test_layering_leaf_headers_bypass_the_dag_but_stay_dependency_free():
    t = FixtureTree()
    try:
        t.write("tools/layering.json", LAYERING_FIXTURE)
        # obs depends on nothing internal, yet may use the leaf header.
        t.write("src/obs/trace.cc", """\
            #include "common/leaf.h"
            """)
        # The leaf header itself must not pull in a real module header.
        t.write("src/common/leaf.h", guarded("COMMON_LEAF", """\

            #include "common/util.h"
            """))
        findings = t.lint()
        assert [(r, line, p.endswith("leaf.h")) for r, line, p in findings] \
            == [("layering", 4, True)]
    finally:
        t.cleanup()


def test_layering_flags_undeclared_modules():
    t = FixtureTree()
    try:
        t.write("tools/layering.json", LAYERING_FIXTURE)
        t.write("src/mystery/new_code.cc", "void F() {}\n")
        findings = t.lint()
        assert [(r, line) for r, line, _p in findings] == [("layering", 1)]
    finally:
        t.cleanup()


def test_guarded_by_coverage_requires_an_annotated_member():
    t = FixtureTree()
    try:
        t.write("src/service/cache.h", guarded("SERVICE_CACHE", """\

            #include <map>
            #include <mutex>
            namespace restune {
            class Unguarded {
             private:
              std::mutex mu_;
              std::map<int, int> entries_;
            };
            class Guarded {
             private:
              mutable Mutex mu_;
              std::map<int, int> entries_ GUARDED_BY(mu_);
            };
            }  // namespace restune
            """))
        findings = t.lint()
        assert [(r, line) for r, line, _p in findings] \
            == [("guarded-by-coverage", 9)]
    finally:
        t.cleanup()


def test_guarded_by_coverage_does_not_credit_nested_class_annotations():
    t = FixtureTree()
    try:
        t.write("src/service/nested.h", guarded("SERVICE_NESTED", """\

            #include <mutex>
            namespace restune {
            class Outer {
              struct Inner {
                Mutex mu;
                int v GUARDED_BY(mu) = 0;
              };
              std::mutex outer_mu_;
            };
            }  // namespace restune
            """))
        findings = t.lint()
        # Inner is fully annotated; Outer's mutex guards nothing.
        assert [(r, line) for r, line, _p in findings] \
            == [("guarded-by-coverage", 11)]
    finally:
        t.cleanup()


def test_lexer_handles_raw_strings_and_digit_separators():
    t = FixtureTree()
    try:
        # The ) inside the raw string must not unbalance anything, the
        # quote inside it must not open a string, and the digit separators
        # must not open a char literal that swallows the naked new below.
        t.write("src/tuner/tricky.cc", """\
            const char* kJson = R"({"new": "delete', ) unbalanced"})";
            const long kBig = 1'000'000;
            struct P {};
            P* Make() { return new P(); }
            """)
        findings = t.lint()
        assert [(r, line) for r, line, _p in findings] == [("naked-new", 4)]
    finally:
        t.cleanup()


def test_prune_allowlist_reports_stale_entries():
    t = FixtureTree()
    try:
        t.write("src/tuner/leak.cc", "struct P {};\nP* A() { return new P(); }\n")
        allow = t.write("allow.txt", """\
            naked-new src/tuner/*.cc  # live: suppresses the leak above
            no-float src/gp/*.cc      # stale: no such file any more
            """)
        findings, entries, used = restune_lint.run_lint_with_usage(
            [os.path.join(t.root, "src")], t.root, allow)
        assert findings == []
        stale = [entries[i] for i in range(len(entries)) if i not in used]
        assert stale == [("no-float", "src/gp/*.cc")]
    finally:
        t.cleanup()


def main():
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failed = []
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as e:
            failed.append(name)
            print(f"FAIL {name}: {e}")
    print(f"{len(tests) - len(failed)}/{len(tests)} passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
