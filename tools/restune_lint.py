#!/usr/bin/env python3
"""restune_lint: project-specific C++ lint rules the compiler cannot enforce.

Rules (see docs/CORRECTNESS.md for rationale):

  rng-discipline   No rand()/srand()/std::random_device/std::mt19937/
                   time(...) wall-clock seeding outside src/common/rng.*.
                   Every stochastic component must draw from restune::Rng so
                   runs stay reproducible bit-for-bit.
  naked-new        No naked `new` / `delete`. Ownership goes through
                   std::make_unique / std::make_shared / containers.
  raw-thread       No std::thread/std::jthread/std::async/pthread_create
                   outside src/common/thread_pool.*. Ad-hoc threads break
                   the deterministic ParallelFor execution model.
  ignored-status   A statement-position call to a function returning Status
                   or Result<T> discards the error. Use
                   RESTUNE_RETURN_IF_ERROR / RESTUNE_ASSIGN_OR_RETURN,
                   check .ok(), or cast to (void) with a reason.
  no-float         No `float` in src/linalg or src/gp: the numeric kernels
                   are double-only by design (mixed precision silently
                   loses the bitwise determinism the replay machinery
                   depends on).
  include-guard    Headers use a #ifndef guard derived from their path
                   (src/gp/kernel.h -> RESTUNE_GP_KERNEL_H_), not
                   #pragma once, so guards are greppable and collisions
                   impossible.
  simd-confinement No vendor SIMD intrinsics (`#include <immintrin.h>`,
                   `_mm*` calls, `__m128/__m256/__m512` types) outside
                   src/linalg/simd/. Everything else targets the
                   dispatching primitives in linalg/simd/simd.h, so the
                   scalar tier stays the single source of portable truth
                   and -DRESTUNE_SIMD=OFF builds cannot break.
  unbounded-wait   No wall-clock sleeps (sleep/usleep/nanosleep/
                   sleep_for/sleep_until) and no naked `.wait()` /
                   `->wait()` calls in tests/. A sleep is timing-based
                   synchronization — flaky on loaded CI and slow
                   everywhere; a wait with no timeout deadlocks the whole
                   suite when the notification never comes. Use simulated
                   time, the ThreadPool's deterministic joins, or a
                   wait_for/wait_until with an explicit bound.
  obs-discipline   Two-way isolation of the observability layer: no
                   wall-clock reads (std::chrono::system_clock,
                   high_resolution_clock, gettimeofday, clock_gettime,
                   localtime, gmtime) outside src/obs/ — all timing goes
                   through the monotonic tracer (obs/trace.h) so traces
                   never perturb replay; and no randomness (restune::Rng,
                   common/rng.h) inside src/obs/ — observability must not
                   consume RNG draws, or enabling a trace would change
                   every downstream sample.
  lock-discipline  In src/: no naked `.lock()`/`.unlock()`/`.try_lock()`
                   calls and no unannotated std RAII guards
                   (std::lock_guard, std::unique_lock, std::scoped_lock)
                   outside src/common/mutex.h. Locking goes through the
                   annotated restune::Mutex/MutexLock so clang
                   -Wthread-safety can see — and verify — every critical
                   section.
  memory-order     Atomic operations in src/common and src/obs (the two
                   modules with lock-free hot paths) must spell an explicit
                   std::memory_order argument. A bare fetch_add defaults
                   to seq_cst, which both hides the author's intent and
                   costs a fence the comment then has to explain away.
  net-discipline   Socket transport stays confined to src/net/: no
                   global-qualified POSIX socket/IO calls (::socket,
                   ::connect, ::read, ::write, ::poll, ...) and no socket
                   system headers (<sys/socket.h>, <netinet/*>,
                   <arpa/inet.h>, <poll.h>, ...) anywhere else — every
                   transport need goes through the net module's RAII
                   Socket API. Additionally, the EINTR token may appear
                   only in src/net/socket.{h,cc}: hand-rolled EINTR retry
                   loops are a classic source of half-right error
                   handling, so every interruptible syscall routes
                   through the one shared net::RetryEintr helper.
  layering         Include-DAG rule: a file under src/<module>/ may
                   include project headers only from its own module, the
                   modules tools/layering.json lists as its dependencies,
                   or a declared leaf header (dependency-free utilities
                   like thread_annotations.h that any module may use).
                   Leaf headers themselves may include only other leaf
                   headers. Keeps obs → common → numeric core →
                   tuner/service a DAG the compiler never gets to see.
  guarded-by-      A class owning a mutex member (restune::Mutex or
  coverage         std::mutex) must annotate at least one member with
                   GUARDED_BY in the same class — a mutex guarding nothing
                   the analysis can check is a lock the analysis cannot
                   help with.

Suppression, from most to least local:
  * `// restune-lint: allow(rule)` on the offending line;
  * an allowlist file (default tools/lint_allowlist.txt) with lines of
    `rule path-glob  # reason`.

Output is human-readable by default; `--json` emits a CI-friendly list of
{"path", "line", "rule", "message"} objects. Exit status is 1 iff findings
remain after suppression. `--prune-allowlist` inverts the check: it exits 1
if any allowlist entry suppresses nothing, so conscious exceptions cannot
outlive the code they excused. There is deliberately no --fix mode: every
violation is either a bug to fix by hand or a conscious exception to record
with a reason.
"""

import argparse
import fnmatch
import json
import os
import re
import sys

CXX_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")
ALLOW_MARKER = re.compile(r"//\s*restune-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

RNG_EXEMPT = ("src/common/rng.h", "src/common/rng.cc")
THREAD_EXEMPT = ("src/common/thread_pool.h", "src/common/thread_pool.cc")
FLOAT_SCOPES = ("src/linalg/", "src/gp/")

OBS_SCOPE = "src/obs/"
SIMD_SCOPE = "src/linalg/simd/"
TEST_SCOPE = "tests/"

RNG_PATTERN = re.compile(
    r"\b(rand|srand|drand48|lrand48|time)\s*\("
    r"|std::(random_device|mt19937(?:_64)?|minstd_rand0?|default_random_engine)\b"
)
NEW_DELETE_PATTERN = re.compile(r"(?<!\w)(new|delete)(?:\s*\[\s*\])?(?![\w(])")
THREAD_PATTERN = re.compile(r"std::(thread|jthread|async)\b|\bpthread_create\b")
FLOAT_PATTERN = re.compile(r"\bfloat\b")
WALL_CLOCK_PATTERN = re.compile(
    r"std::chrono::(system_clock|high_resolution_clock)\b"
    r"|\b(gettimeofday|clock_gettime|localtime(?:_r)?|gmtime(?:_r)?)\s*\("
)
SLEEP_PATTERN = re.compile(
    r"\b(?:sleep|usleep|nanosleep)\s*\("
    r"|\bsleep_(?:for|until)\s*(?:<[^>]*>)?\s*\(")
# `.wait(` / `->wait(` with no timeout; wait_for/wait_until do not match
# (the paren must follow `wait` directly).
NAKED_WAIT_PATTERN = re.compile(r"(?:\.|->)\s*wait\s*\(")
OBS_RNG_USE_PATTERN = re.compile(r"\bRng\b")
OBS_RNG_INCLUDE_PATTERN = re.compile(r'#\s*include\s*"common/rng\.h"')
SIMD_INCLUDE_PATTERN = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|emmintrin|xmmintrin|smmintrin|"
    r"tmmintrin|nmmintrin|avxintrin|avx2intrin|arm_neon)\.h>")
SIMD_TOKEN_PATTERN = re.compile(
    r"\b_mm(?:256|512)?_\w+|\b__m(?:128|256|512)[di]?\b")

# `Status Foo(...)` / `Result<T> Foo(...)` declarations; used to build the
# set of function names whose return value must not be discarded.
STATUS_DECL_PATTERN = re.compile(
    r"(?:^|[;{}]|\n)\s*(?:virtual\s+|static\s+|\[\[nodiscard\]\]\s+)*"
    r"(Status|Result<[^;{}()]{1,80}>)\s+(\w+)\s*\("
)
# Any other `Type Foo(...)` declaration; names that also appear with a
# non-Status return type are ambiguous under a regex-only analysis, so they
# are skipped rather than risk false positives (e.g. DdpgAgent::Observe
# returns void while the advisors' Observe returns Status).
ANY_DECL_PATTERN = re.compile(
    r"(?:^|[;{}]|\n)\s*(?:virtual\s+|static\s+|inline\s+|constexpr\s+|explicit\s+)*"
    r"((?:::)?[\w:]+(?:<[^;{}()]{1,80}>)?[&*]?)\s+(\w+)\s*\("
)

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "assert",
    "defined", "alignof", "decltype", "static_assert",
}


def is_header(path):
    return path.endswith((".h", ".hpp"))


# Raw-string opener: optional encoding prefix, R, quote, then a delimiter of
# up to 16 chars that may not contain parens/backslash/whitespace.
RAW_STRING_START = re.compile(r'(?:u8|[uUL])?R"([^()\\\s]{0,16})\(')
# A C++ pp-number: digits with optional digit separators ('), hex/float
# chars, and signed exponents. Consumed atomically so the ' separator in
# 1'000'000 is never mistaken for a char-literal opener.
PP_NUMBER = re.compile(r"\.?\d(?:['0-9a-zA-Z_.]|[eEpP][+-])*")


def _blank_preserving_newlines(text):
    return "".join("\n" if c == "\n" else " " for c in text)


def strip_comments_and_strings(text):
    """Replaces comment/string contents with spaces, preserving newlines.

    Line numbers and column positions of remaining code are unchanged, so
    findings can point at the original source. Raw strings (R"(...)") are
    blanked like ordinary strings, and numeric literals are consumed whole
    so digit separators (1'000'000) never open a phantom char literal.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            ident_before = i > 0 and (text[i - 1].isalnum() or
                                      text[i - 1] == "_")
            if c in "RuUL" and not ident_before:
                m = RAW_STRING_START.match(text, i)
                if m:
                    close = ")" + m.group(1) + '"'
                    end = text.find(close, m.end())
                    stop = n if end == -1 else end + len(close)
                    region = text[i:stop]
                    out.append('"')
                    out.append(_blank_preserving_newlines(region[1:-1]))
                    if len(region) >= 2:
                        out.append('"')
                    i = stop
                    continue
            if (c.isdigit() or (c == "." and nxt.isdigit())) \
                    and not ident_before:
                m = PP_NUMBER.match(text, i)
                out.append(m.group(0))
                i = m.end()
                continue
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Shared lexer: the multi-pass rules below (lock-discipline, memory-order,
# guarded-by-coverage) work on a token stream rather than raw lines, so a
# declaration split across lines or an annotation macro with arguments is
# still one analyzable unit. Tokens carry their 1-based source line.
# ---------------------------------------------------------------------------

TOKEN_PATTERN = re.compile(r"""
      (?P<ident>[A-Za-z_]\w*)
    | (?P<number>\.?\d(?:['0-9a-zA-Z_.]|[eEpP][+-])*)
    | (?P<punct>::|->\*|->|\.\*|\+\+|--|<<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||
                [-+*/%&|^!<>=~?:;,.(){}\[\]#])
""", re.VERBOSE)


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line


def tokenize(code_text):
    """Lexes comment/string-stripped C++ into (kind, text, line) tokens."""
    tokens = []
    line = 1
    pos = 0
    for m in TOKEN_PATTERN.finditer(code_text):
        line += code_text.count("\n", pos, m.start())
        pos = m.start()
        tokens.append(Token(m.lastgroup, m.group(0), line))
    return tokens


def find_class_spans(tokens):
    """Token-index spans of class/struct bodies: [(name, lo, hi)].

    `lo`/`hi` are the indices of the opening and closing brace. Nested
    classes get their own span. Forward declarations, `enum class`, and
    `class T` template parameters produce no span. Attribute macros in the
    class head (`class CAPABILITY("mutex") Mutex {`) are skipped — the
    last identifier before the body or base clause is the name.
    """
    spans = []
    open_stack = []  # (name, open_idx, depth_at_open)
    pending_name = None
    depth = 0
    n = len(tokens)
    i = 0
    while i < n:
        t = tokens[i]
        if t.text == "{":
            depth += 1
            if pending_name is not None:
                open_stack.append((pending_name, i, depth))
                pending_name = None
        elif t.text == "}":
            if open_stack and open_stack[-1][2] == depth:
                name, lo, _ = open_stack.pop()
                spans.append((name, lo, i))
            depth -= 1
        elif t.text == ";":
            pending_name = None  # forward declaration
        elif t.kind == "ident" and t.text in ("class", "struct") \
                and (i == 0 or tokens[i - 1].text != "enum"):
            name = None
            j = i + 1
            while j < n and tokens[j].text not in ("{", ";", ":"):
                tj = tokens[j]
                if tj.text in ("class", "struct"):
                    break  # template parameter list; the real head follows
                if tj.kind == "ident" and tj.text not in ("final", "alignas"):
                    name = tj.text
                j += 1
            else:
                j = min(j, n)
            if name is not None and j < n and tokens[j].text != ";":
                pending_name = name
            i = j - 1 if j > i else i
        i += 1
    spans.sort(key=lambda s: s[1])
    return spans


class FileContext:
    """Per-file analysis state shared by the token-aware rules, computed
    lazily so single-pass regex rules pay nothing for it."""

    def __init__(self, rel, raw_text, code_text):
        self.rel = rel
        self.raw_text = raw_text
        self.code_text = code_text
        self._tokens = None
        self._class_spans = None

    @property
    def tokens(self):
        if self._tokens is None:
            self._tokens = tokenize(self.code_text)
        return self._tokens

    @property
    def class_spans(self):
        if self._class_spans is None:
            self._class_spans = find_class_spans(self.tokens)
        return self._class_spans


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def as_dict(self):
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


def load_allowlist(path):
    entries = []
    if not path or not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                print(
                    f"{path}:{lineno}: malformed allowlist entry "
                    f"(want 'rule path-glob'): {raw.rstrip()}",
                    file=sys.stderr,
                )
                sys.exit(2)
            entries.append((parts[0], parts[1]))
    return entries


def allowed(finding, allowlist, used=None):
    """First allowlist entry index matching `finding`, or None.

    `used` (a set) collects indices of entries that suppressed at least one
    finding — the input to --prune-allowlist staleness detection.
    """
    for idx, (rule, glob) in enumerate(allowlist):
        if rule in (finding.rule, "*") and fnmatch.fnmatch(finding.path, glob):
            if used is not None:
                used.add(idx)
            return idx
    return None


def inline_allowed_rules(raw_line):
    m = ALLOW_MARKER.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def expected_guard(relpath):
    trimmed = relpath[4:] if relpath.startswith("src/") else relpath
    token = re.sub(r"[^A-Za-z0-9]", "_", trimmed).upper()
    return f"RESTUNE_{token}_"


def collect_status_functions(files):
    """Names that *only* ever appear returning Status/Result across `files`."""
    status_names = set()
    other_names = set()
    for path, _rel, text in files:
        if not is_header(path):
            continue
        code = strip_comments_and_strings(text)
        for m in STATUS_DECL_PATTERN.finditer(code):
            status_names.add(m.group(2))
        for m in ANY_DECL_PATTERN.finditer(code):
            rtype, name = m.group(1), m.group(2)
            if rtype in ("Status",) or rtype.startswith("Result<"):
                continue
            if rtype in CONTROL_KEYWORDS or name in CONTROL_KEYWORDS:
                continue
            other_names.add(name)
    return status_names - other_names - CONTROL_KEYWORDS


def check_rng(rel, code_lines, raw_lines, findings):
    if rel in RNG_EXEMPT:
        return
    for lineno, line in enumerate(code_lines, 1):
        m = RNG_PATTERN.search(line)
        if m:
            findings.append(Finding(
                rel, lineno, "rng-discipline",
                f"'{m.group(0).strip()}' bypasses restune::Rng; all "
                "randomness must flow through src/common/rng.* so runs are "
                "reproducible"))


def check_new_delete(rel, code_lines, raw_lines, findings):
    for lineno, line in enumerate(code_lines, 1):
        # Preprocessor lines are not expressions (`#include <new>`).
        if line.lstrip().startswith("#"):
            continue
        # Deleted/defaulted special members are declarations, not ownership.
        line = re.sub(r"=\s*(delete|default)\b", "", line)
        for m in NEW_DELETE_PATTERN.finditer(line):
            findings.append(Finding(
                rel, lineno, "naked-new",
                f"naked '{m.group(1)}'; use std::make_unique/"
                "std::make_shared or a container"))


def check_threads(rel, code_lines, raw_lines, findings):
    if rel in THREAD_EXEMPT:
        return
    for lineno, line in enumerate(code_lines, 1):
        m = THREAD_PATTERN.search(line)
        if m:
            findings.append(Finding(
                rel, lineno, "raw-thread",
                f"'{m.group(0)}' outside the ThreadPool; ad-hoc threads "
                "break the deterministic ParallelFor execution model"))


def check_float(rel, code_lines, raw_lines, findings):
    if not rel.startswith(FLOAT_SCOPES):
        return
    for lineno, line in enumerate(code_lines, 1):
        if FLOAT_PATTERN.search(line):
            findings.append(Finding(
                rel, lineno, "no-float",
                "'float' in the double-only numeric core; mixed precision "
                "breaks bitwise replay determinism"))


def check_simd_confinement(rel, code_lines, raw_lines, findings):
    if rel.startswith(SIMD_SCOPE):
        return
    # Include scan runs on raw lines: the angle-bracket path survives
    # stripping, but keep both scans consistent with the obs include check.
    for lineno, raw in enumerate(raw_lines, 1):
        if SIMD_INCLUDE_PATTERN.search(raw):
            findings.append(Finding(
                rel, lineno, "simd-confinement",
                "vendor intrinsics header included outside src/linalg/simd/; "
                "use the dispatching primitives in linalg/simd/simd.h"))
    for lineno, line in enumerate(code_lines, 1):
        m = SIMD_TOKEN_PATTERN.search(line)
        if m:
            findings.append(Finding(
                rel, lineno, "simd-confinement",
                f"'{m.group(0)}' intrinsic outside src/linalg/simd/; use "
                "the dispatching primitives in linalg/simd/simd.h"))


def check_unbounded_wait(rel, code_lines, raw_lines, findings):
    if not rel.startswith(TEST_SCOPE):
        return
    for lineno, line in enumerate(code_lines, 1):
        m = SLEEP_PATTERN.search(line)
        if m:
            findings.append(Finding(
                rel, lineno, "unbounded-wait",
                f"'{m.group(0).strip()}' wall-clock sleep in a test; "
                "timing-based synchronization is flaky on loaded CI — use "
                "simulated time or an explicitly bounded wait"))
        m = NAKED_WAIT_PATTERN.search(line)
        if m:
            findings.append(Finding(
                rel, lineno, "unbounded-wait",
                "naked 'wait()' with no timeout in a test; a missed "
                "notification deadlocks the suite — use wait_for/"
                "wait_until with an explicit bound"))


def check_obs_discipline(rel, code_lines, raw_lines, findings):
    if rel.startswith(OBS_SCOPE):
        # Inside the observability layer: no randomness, so enabling a
        # trace can never shift a downstream sample. The include check
        # scans raw lines because strip_comments_and_strings blanks the
        # quoted include path.
        for lineno, raw in enumerate(raw_lines, 1):
            if OBS_RNG_INCLUDE_PATTERN.search(raw):
                findings.append(Finding(
                    rel, lineno, "obs-discipline",
                    "src/obs must not include common/rng.h; observability "
                    "code may not consume RNG draws"))
        for lineno, line in enumerate(code_lines, 1):
            if OBS_RNG_USE_PATTERN.search(line):
                findings.append(Finding(
                    rel, lineno, "obs-discipline",
                    "'Rng' inside src/obs; observability code may not "
                    "consume RNG draws, or tracing would perturb replay"))
        return
    # Outside it: no wall-clock reads; all timing flows through the
    # monotonic tracer so traces stay comparable and replay-stable.
    for lineno, line in enumerate(code_lines, 1):
        m = WALL_CLOCK_PATTERN.search(line)
        if m:
            findings.append(Finding(
                rel, lineno, "obs-discipline",
                f"'{m.group(0).strip()}' wall-clock read outside src/obs/; "
                "time measurements go through the monotonic tracer "
                "(obs/trace.h) or std::chrono::steady_clock"))


LOCK_EXEMPT = ("src/common/mutex.h",)
NAKED_LOCK_PATTERN = re.compile(
    r"(?:\.|->)\s*(try_lock|lock|unlock)\s*\(")
STD_GUARD_PATTERN = re.compile(
    r"\bstd::(lock_guard|unique_lock|scoped_lock)\b")

MEMORY_ORDER_SCOPES = ("src/common/", "src/obs/")
ATOMIC_OP_PATTERN = re.compile(
    r"(?:\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|"
    r"fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong|"
    r"test_and_set)\s*\(")

GUARDED_BY_EXEMPT = ("src/common/mutex.h",)
INCLUDE_PATTERN = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

NET_SCOPE = "src/net/"
# The one home of EINTR handling: the shared RetryEintr helper and the
# syscall wrappers built on it.
NET_EINTR_EXEMPT = ("src/net/socket.h", "src/net/socket.cc")
# Global-qualified POSIX socket/IO calls. The lookbehind keeps qualified
# names (std::bind, absl::flat_hash_map::accept, ...) from matching: their
# `::` is preceded by an identifier character.
NET_SYSCALL_PATTERN = re.compile(
    r"(?<![\w)])::(socket|bind|listen|accept4?|connect|recv|recvfrom|"
    r"recvmsg|send|sendto|sendmsg|read|write|poll|select|epoll_\w+|"
    r"setsockopt|getsockopt|getsockname|getpeername|shutdown|close)\s*\(")
NET_HEADER_PATTERN = re.compile(
    r"#\s*include\s*<(sys/socket\.h|sys/epoll\.h|sys/select\.h|"
    r"netinet/[^>]+|arpa/inet\.h|poll\.h|netdb\.h)>")
EINTR_PATTERN = re.compile(r"\bEINTR\b")


def check_lock_discipline(rel, code_lines, raw_lines, findings):
    # src/ only: production locking must be visible to -Wthread-safety;
    # tests may use std primitives directly to exercise interop fixtures.
    if not rel.startswith("src/") or rel in LOCK_EXEMPT:
        return
    for lineno, line in enumerate(code_lines, 1):
        m = NAKED_LOCK_PATTERN.search(line)
        if m:
            findings.append(Finding(
                rel, lineno, "lock-discipline",
                f"naked '.{m.group(1)}()' call; take restune::MutexLock so "
                "the critical section is RAII-scoped and visible to clang "
                "-Wthread-safety"))
        m = STD_GUARD_PATTERN.search(line)
        if m:
            findings.append(Finding(
                rel, lineno, "lock-discipline",
                f"'std::{m.group(1)}' carries no thread-safety annotations; "
                "use restune::Mutex/MutexLock (common/mutex.h) so the "
                "analysis can verify the lock"))


def check_net_discipline(rel, code_lines, raw_lines, findings):
    if rel.startswith(NET_SCOPE):
        # Inside the net module only socket.{h,cc} may spell EINTR — the
        # retry loop lives exactly once, in net::RetryEintr.
        if rel not in NET_EINTR_EXEMPT:
            for lineno, line in enumerate(code_lines, 1):
                if EINTR_PATTERN.search(line):
                    findings.append(Finding(
                        rel, lineno, "net-discipline",
                        "EINTR handled outside net/socket.{h,cc}; route the "
                        "interruptible syscall through the shared "
                        "net::RetryEintr helper instead of a hand-rolled "
                        "retry loop"))
        return
    # Outside src/net/: no raw sockets at all. Header scan runs on raw
    # lines because stripping blanks nothing inside <...> but this keeps
    # the scan consistent with the other include checks.
    for lineno, raw in enumerate(raw_lines, 1):
        m = NET_HEADER_PATTERN.search(raw)
        if m:
            findings.append(Finding(
                rel, lineno, "net-discipline",
                f"socket system header <{m.group(1)}> outside src/net/; "
                "transports go through the net module's RAII Socket API"))
    for lineno, line in enumerate(code_lines, 1):
        m = NET_SYSCALL_PATTERN.search(line)
        if m:
            findings.append(Finding(
                rel, lineno, "net-discipline",
                f"naked '::{m.group(1)}' syscall outside src/net/; use the "
                "net module's Socket/ListenTcp/ConnectTcp wrappers so EINTR "
                "handling, non-blocking modes, and fd lifetimes stay in one "
                "audited place"))
        if EINTR_PATTERN.search(line):
            findings.append(Finding(
                rel, lineno, "net-discipline",
                "EINTR handling outside src/net/; interruptible syscalls "
                "belong behind net::RetryEintr (src/net/socket.h)"))


def _matching_paren_span(text, open_pos):
    """Text span of a balanced paren group starting at `open_pos` ('(')."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_pos:i]
    return text[open_pos:]


def check_memory_order(rel, code_text, findings):
    if not rel.startswith(MEMORY_ORDER_SCOPES):
        return
    for m in ATOMIC_OP_PATTERN.finditer(code_text):
        args = _matching_paren_span(code_text, m.end() - 1)
        if "memory_order" in args:
            continue
        line = 1 + code_text.count("\n", 0, m.start())
        findings.append(Finding(
            rel, line, "memory-order",
            f"atomic '{m.group(1)}' without an explicit std::memory_order; "
            "the lock-free paths in src/common and src/obs must state "
            "their ordering (a bare call is an implicit seq_cst fence)"))


def check_layering(rel, raw_lines, layering, findings):
    if layering is None or not rel.startswith("src/"):
        return
    modules = layering.get("modules", {})
    leaf_headers = set(layering.get("leaf_headers", []))
    parts = rel.split("/")
    if len(parts) < 3:
        return  # a file directly under src/ belongs to no module
    module = parts[1]
    rel_in_src = rel[len("src/"):]
    is_leaf = rel_in_src in leaf_headers
    if module not in modules:
        findings.append(Finding(
            rel, 1, "layering",
            f"module 'src/{module}/' is not declared in tools/layering.json; "
            "add it (with its dependency list) so the include DAG stays "
            "complete"))
        return
    allowed = set(modules[module]) | {module}
    for lineno, raw in enumerate(raw_lines, 1):
        m = INCLUDE_PATTERN.match(raw)
        if not m:
            continue
        inc = m.group(1)
        if is_leaf:
            if inc not in leaf_headers:
                findings.append(Finding(
                    rel, lineno, "layering",
                    f"leaf header includes \"{inc}\"; leaf headers must "
                    "stay dependency-free (only other leaf headers allowed) "
                    "or every module inherits the dependency"))
            continue
        if inc in leaf_headers:
            continue
        inc_module = inc.split("/")[0]
        if inc_module not in modules:
            continue  # not a module-scoped project header
        if inc_module not in allowed:
            findings.append(Finding(
                rel, lineno, "layering",
                f"src/{module} may not include \"{inc}\": "
                f"'{inc_module}' is not among its declared dependencies in "
                "tools/layering.json (obs → common → numeric core → "
                "tuner/service must stay a DAG)"))


def check_guarded_by_coverage(rel, ctx, findings):
    if not rel.startswith("src/") or rel in GUARDED_BY_EXEMPT:
        return
    tokens = ctx.tokens
    spans = ctx.class_spans
    for name, lo, hi in spans:
        # Exclude nested class bodies: their mutexes/annotations are their
        # own concern, and crediting an inner GUARDED_BY to the outer class
        # would hide an unguarded outer mutex.
        children = [(clo, chi) for _, clo, chi in spans
                    if lo < clo and chi < hi]
        mutex_members = []
        has_guard = False
        idx = lo + 1
        while idx < hi:
            if any(clo <= idx <= chi for clo, chi in children):
                idx += 1
                continue
            t = tokens[idx]
            if t.kind == "ident" and t.text == "GUARDED_BY":
                has_guard = True
            is_mutex_type = t.kind == "ident" and (
                t.text == "Mutex"
                or (t.text == "mutex" and idx >= 2
                    and tokens[idx - 1].text == "::"
                    and tokens[idx - 2].text == "std"))
            if is_mutex_type and idx + 2 < hi:
                member = tokens[idx + 1]
                after = tokens[idx + 2]
                if member.kind == "ident" and after.text in (";", "=", "{"):
                    mutex_members.append((member.text, t.line))
            idx += 1
        if mutex_members and not has_guard:
            for member_name, line in mutex_members:
                findings.append(Finding(
                    rel, line, "guarded-by-coverage",
                    f"class '{name}' owns mutex '{member_name}' but "
                    "annotates nothing GUARDED_BY it; a mutex the analysis "
                    "cannot associate with data is a lock it cannot check"))


def load_layering(root):
    path = os.path.join(root, "tools", "layering.json")
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as f:
        return json.load(f)


STATEMENT_CALL = r"^\s*(?:[\w\[\]]+(?:\.|->))*{name}\s*\("
IGNORE_STATEMENT = re.compile(
    r"=|\breturn\b|\(void\)|RESTUNE_|EXPECT_|ASSERT_|CHECK\(|\bco_return\b")


def check_ignored_status(rel, code_text, status_functions, findings):
    # Statement-level scan: split the comment/string-stripped code on ';'
    # and flag statements that *start* with a call to a Status-returning
    # function (possibly via object.method / pointer->method) and neither
    # consume nor forward the result. AST-lite on purpose: names whose
    # declarations are ambiguous never enter `status_functions`.
    line = 1
    call_head = re.compile(r"^((?:[\w\[\]]+(?:\.|->))*)(\w+)\s*\(")
    for statement in code_text.split(";"):
        # A chunk between semicolons may drag along the tail of an enclosing
        # construct (`void F() {\n  session.Begin(...)`) — the statement
        # proper starts after the last brace.
        brace = max(statement.rfind("{"), statement.rfind("}"))
        tail = statement[brace + 1:] if brace >= 0 else statement
        stripped = tail.strip()
        if stripped and not IGNORE_STATEMENT.search(stripped):
            m = call_head.match(stripped)
            if m and m.group(2) in status_functions:
                name = m.group(2)
                pos = brace + 1 + (len(tail) - len(tail.lstrip())) + m.start(2)
                call_line = line + statement[:pos].count("\n")
                findings.append(Finding(
                    rel, call_line, "ignored-status",
                    f"result of '{name}(...)' (returns Status/Result) is "
                    "discarded; propagate it, check .ok(), or cast to "
                    "(void) with a reason"))
        line += statement.count("\n")


def check_include_guard(rel, raw_text, findings):
    guard = expected_guard(rel)
    lines = raw_text.splitlines()
    if "#pragma once" in raw_text:
        line = next((i for i, l in enumerate(lines, 1)
                     if "#pragma once" in l), 1)
        findings.append(Finding(
            rel, line, "include-guard",
            f"'#pragma once' — use the path-derived guard {guard}"))
        return
    m_ifndef = re.search(r"^#ifndef\s+(\S+)", raw_text, re.MULTILINE)
    m_define = re.search(r"^#define\s+(\S+)", raw_text, re.MULTILINE)
    if not m_ifndef or not m_define or m_ifndef.group(1) != guard \
            or m_define.group(1) != guard:
        got = m_ifndef.group(1) if m_ifndef else "(none)"
        findings.append(Finding(
            rel, 1, "include-guard",
            f"include guard is {got}, expected path-derived {guard}"))
        return
    if "#endif" not in raw_text:
        findings.append(Finding(
            rel, len(lines), "include-guard",
            f"missing closing #endif for guard {guard}"))


def gather_files(paths, root):
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            candidates = [full]
        else:
            candidates = []
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames[:] = [d for d in dirnames
                               if d not in ("build", ".git")]
                for name in sorted(filenames):
                    candidates.append(os.path.join(dirpath, name))
        for c in candidates:
            if c.endswith(CXX_EXTENSIONS):
                rel = os.path.relpath(c, root).replace(os.sep, "/")
                with open(c, encoding="utf-8") as f:
                    files.append((c, rel, f.read()))
    return files


def run_lint(paths, root, allowlist_path):
    findings, _allowlist, _used = run_lint_with_usage(
        paths, root, allowlist_path)
    return findings


def run_lint_with_usage(paths, root, allowlist_path):
    """Lints `paths`; returns (findings, allowlist entries, used indices).

    The used-index set drives --prune-allowlist: an entry whose index never
    lands in it suppressed nothing and is stale.
    """
    allowlist = load_allowlist(allowlist_path)
    layering = load_layering(root)
    files = gather_files(paths, root)
    status_functions = collect_status_functions(files)
    findings = []
    used = set()
    for _path, rel, text in files:
        raw_lines = text.splitlines()
        code_text = strip_comments_and_strings(text)
        code_lines = code_text.splitlines()
        ctx = FileContext(rel, text, code_text)
        file_findings = []
        check_rng(rel, code_lines, raw_lines, file_findings)
        check_new_delete(rel, code_lines, raw_lines, file_findings)
        check_threads(rel, code_lines, raw_lines, file_findings)
        check_float(rel, code_lines, raw_lines, file_findings)
        check_simd_confinement(rel, code_lines, raw_lines, file_findings)
        check_unbounded_wait(rel, code_lines, raw_lines, file_findings)
        check_obs_discipline(rel, code_lines, raw_lines, file_findings)
        check_ignored_status(rel, code_text, status_functions, file_findings)
        check_lock_discipline(rel, code_lines, raw_lines, file_findings)
        check_net_discipline(rel, code_lines, raw_lines, file_findings)
        check_memory_order(rel, code_text, file_findings)
        check_layering(rel, raw_lines, layering, file_findings)
        check_guarded_by_coverage(rel, ctx, file_findings)
        if is_header(rel):
            check_include_guard(rel, text, file_findings)
        for f in file_findings:
            # Inline suppression applies on the offending line or, for lines
            # with no room for a trailing comment, on the line above.
            local = set()
            if 1 <= f.line <= len(raw_lines):
                local |= inline_allowed_rules(raw_lines[f.line - 1])
            if f.line >= 2:
                local |= inline_allowed_rules(raw_lines[f.line - 2])
            if f.rule in local or allowed(f, allowlist, used) is not None:
                continue
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, allowlist, used


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint (repo-relative)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array on stdout")
    parser.add_argument("--prune-allowlist", action="store_true",
                        help="exit 1 if any allowlist entry suppresses no "
                             "finding over the given paths (stale exception)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             "<root>/tools/lint_allowlist.txt)")
    args = parser.parse_args(argv)

    root = os.path.abspath(
        args.root or os.path.join(os.path.dirname(__file__), os.pardir))
    allowlist_path = args.allowlist
    if allowlist_path is None:
        allowlist_path = os.path.join(root, "tools", "lint_allowlist.txt")

    findings, allowlist, used = run_lint_with_usage(
        args.paths, root, allowlist_path)

    if args.prune_allowlist:
        stale = [(rule, glob) for idx, (rule, glob) in enumerate(allowlist)
                 if idx not in used]
        for rule, glob in stale:
            print(f"{allowlist_path}: stale entry '{rule} {glob}' "
                  "suppresses nothing; delete it (the code it excused is "
                  "gone or fixed)")
        if stale:
            print(f"restune_lint: {len(stale)} stale allowlist entr"
                  f"{'y' if len(stale) == 1 else 'ies'}")
        else:
            print("restune_lint: allowlist has no stale entries")
        return 1 if stale else 0

    if args.json:
        json.dump([f.as_dict() for f in findings], sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for f in findings:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        if findings:
            print(f"\nrestune_lint: {len(findings)} finding(s)")
        else:
            print("restune_lint: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
