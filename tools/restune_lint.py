#!/usr/bin/env python3
"""restune_lint: project-specific C++ lint rules the compiler cannot enforce.

Rules (see docs/CORRECTNESS.md for rationale):

  rng-discipline   No rand()/srand()/std::random_device/std::mt19937/
                   time(...) wall-clock seeding outside src/common/rng.*.
                   Every stochastic component must draw from restune::Rng so
                   runs stay reproducible bit-for-bit.
  naked-new        No naked `new` / `delete`. Ownership goes through
                   std::make_unique / std::make_shared / containers.
  raw-thread       No std::thread/std::jthread/std::async/pthread_create
                   outside src/common/thread_pool.*. Ad-hoc threads break
                   the deterministic ParallelFor execution model.
  ignored-status   A statement-position call to a function returning Status
                   or Result<T> discards the error. Use
                   RESTUNE_RETURN_IF_ERROR / RESTUNE_ASSIGN_OR_RETURN,
                   check .ok(), or cast to (void) with a reason.
  no-float         No `float` in src/linalg or src/gp: the numeric kernels
                   are double-only by design (mixed precision silently
                   loses the bitwise determinism the replay machinery
                   depends on).
  include-guard    Headers use a #ifndef guard derived from their path
                   (src/gp/kernel.h -> RESTUNE_GP_KERNEL_H_), not
                   #pragma once, so guards are greppable and collisions
                   impossible.
  simd-confinement No vendor SIMD intrinsics (`#include <immintrin.h>`,
                   `_mm*` calls, `__m128/__m256/__m512` types) outside
                   src/linalg/simd/. Everything else targets the
                   dispatching primitives in linalg/simd/simd.h, so the
                   scalar tier stays the single source of portable truth
                   and -DRESTUNE_SIMD=OFF builds cannot break.
  unbounded-wait   No wall-clock sleeps (sleep/usleep/nanosleep/
                   sleep_for/sleep_until) and no naked `.wait()` /
                   `->wait()` calls in tests/. A sleep is timing-based
                   synchronization — flaky on loaded CI and slow
                   everywhere; a wait with no timeout deadlocks the whole
                   suite when the notification never comes. Use simulated
                   time, the ThreadPool's deterministic joins, or a
                   wait_for/wait_until with an explicit bound.
  obs-discipline   Two-way isolation of the observability layer: no
                   wall-clock reads (std::chrono::system_clock,
                   high_resolution_clock, gettimeofday, clock_gettime,
                   localtime, gmtime) outside src/obs/ — all timing goes
                   through the monotonic tracer (obs/trace.h) so traces
                   never perturb replay; and no randomness (restune::Rng,
                   common/rng.h) inside src/obs/ — observability must not
                   consume RNG draws, or enabling a trace would change
                   every downstream sample.

Suppression, from most to least local:
  * `// restune-lint: allow(rule)` on the offending line;
  * an allowlist file (default tools/lint_allowlist.txt) with lines of
    `rule path-glob  # reason`.

Output is human-readable by default; `--json` emits a CI-friendly list of
{"path", "line", "rule", "message"} objects. Exit status is 1 iff findings
remain after suppression. There is deliberately no --fix mode: every
violation is either a bug to fix by hand or a conscious exception to record
with a reason.
"""

import argparse
import fnmatch
import json
import os
import re
import sys

CXX_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")
ALLOW_MARKER = re.compile(r"//\s*restune-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

RNG_EXEMPT = ("src/common/rng.h", "src/common/rng.cc")
THREAD_EXEMPT = ("src/common/thread_pool.h", "src/common/thread_pool.cc")
FLOAT_SCOPES = ("src/linalg/", "src/gp/")

OBS_SCOPE = "src/obs/"
SIMD_SCOPE = "src/linalg/simd/"
TEST_SCOPE = "tests/"

RNG_PATTERN = re.compile(
    r"\b(rand|srand|drand48|lrand48|time)\s*\("
    r"|std::(random_device|mt19937(?:_64)?|minstd_rand0?|default_random_engine)\b"
)
NEW_DELETE_PATTERN = re.compile(r"(?<!\w)(new|delete)(?:\s*\[\s*\])?(?![\w(])")
THREAD_PATTERN = re.compile(r"std::(thread|jthread|async)\b|\bpthread_create\b")
FLOAT_PATTERN = re.compile(r"\bfloat\b")
WALL_CLOCK_PATTERN = re.compile(
    r"std::chrono::(system_clock|high_resolution_clock)\b"
    r"|\b(gettimeofday|clock_gettime|localtime(?:_r)?|gmtime(?:_r)?)\s*\("
)
SLEEP_PATTERN = re.compile(
    r"\b(?:sleep|usleep|nanosleep)\s*\("
    r"|\bsleep_(?:for|until)\s*(?:<[^>]*>)?\s*\(")
# `.wait(` / `->wait(` with no timeout; wait_for/wait_until do not match
# (the paren must follow `wait` directly).
NAKED_WAIT_PATTERN = re.compile(r"(?:\.|->)\s*wait\s*\(")
OBS_RNG_USE_PATTERN = re.compile(r"\bRng\b")
OBS_RNG_INCLUDE_PATTERN = re.compile(r'#\s*include\s*"common/rng\.h"')
SIMD_INCLUDE_PATTERN = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|emmintrin|xmmintrin|smmintrin|"
    r"tmmintrin|nmmintrin|avxintrin|avx2intrin|arm_neon)\.h>")
SIMD_TOKEN_PATTERN = re.compile(
    r"\b_mm(?:256|512)?_\w+|\b__m(?:128|256|512)[di]?\b")

# `Status Foo(...)` / `Result<T> Foo(...)` declarations; used to build the
# set of function names whose return value must not be discarded.
STATUS_DECL_PATTERN = re.compile(
    r"(?:^|[;{}]|\n)\s*(?:virtual\s+|static\s+|\[\[nodiscard\]\]\s+)*"
    r"(Status|Result<[^;{}()]{1,80}>)\s+(\w+)\s*\("
)
# Any other `Type Foo(...)` declaration; names that also appear with a
# non-Status return type are ambiguous under a regex-only analysis, so they
# are skipped rather than risk false positives (e.g. DdpgAgent::Observe
# returns void while the advisors' Observe returns Status).
ANY_DECL_PATTERN = re.compile(
    r"(?:^|[;{}]|\n)\s*(?:virtual\s+|static\s+|inline\s+|constexpr\s+|explicit\s+)*"
    r"((?:::)?[\w:]+(?:<[^;{}()]{1,80}>)?[&*]?)\s+(\w+)\s*\("
)

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "assert",
    "defined", "alignof", "decltype", "static_assert",
}


def is_header(path):
    return path.endswith((".h", ".hpp"))


def strip_comments_and_strings(text):
    """Replaces comment/string contents with spaces, preserving newlines.

    Line numbers and column positions of remaining code are unchanged, so
    findings can point at the original source.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def as_dict(self):
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


def load_allowlist(path):
    entries = []
    if not path or not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                print(
                    f"{path}:{lineno}: malformed allowlist entry "
                    f"(want 'rule path-glob'): {raw.rstrip()}",
                    file=sys.stderr,
                )
                sys.exit(2)
            entries.append((parts[0], parts[1]))
    return entries


def allowed(finding, allowlist):
    for rule, glob in allowlist:
        if rule in (finding.rule, "*") and fnmatch.fnmatch(finding.path, glob):
            return True
    return False


def inline_allowed_rules(raw_line):
    m = ALLOW_MARKER.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


def expected_guard(relpath):
    trimmed = relpath[4:] if relpath.startswith("src/") else relpath
    token = re.sub(r"[^A-Za-z0-9]", "_", trimmed).upper()
    return f"RESTUNE_{token}_"


def collect_status_functions(files):
    """Names that *only* ever appear returning Status/Result across `files`."""
    status_names = set()
    other_names = set()
    for path, _rel, text in files:
        if not is_header(path):
            continue
        code = strip_comments_and_strings(text)
        for m in STATUS_DECL_PATTERN.finditer(code):
            status_names.add(m.group(2))
        for m in ANY_DECL_PATTERN.finditer(code):
            rtype, name = m.group(1), m.group(2)
            if rtype in ("Status",) or rtype.startswith("Result<"):
                continue
            if rtype in CONTROL_KEYWORDS or name in CONTROL_KEYWORDS:
                continue
            other_names.add(name)
    return status_names - other_names - CONTROL_KEYWORDS


def check_rng(rel, code_lines, raw_lines, findings):
    if rel in RNG_EXEMPT:
        return
    for lineno, line in enumerate(code_lines, 1):
        m = RNG_PATTERN.search(line)
        if m:
            findings.append(Finding(
                rel, lineno, "rng-discipline",
                f"'{m.group(0).strip()}' bypasses restune::Rng; all "
                "randomness must flow through src/common/rng.* so runs are "
                "reproducible"))


def check_new_delete(rel, code_lines, raw_lines, findings):
    for lineno, line in enumerate(code_lines, 1):
        # Preprocessor lines are not expressions (`#include <new>`).
        if line.lstrip().startswith("#"):
            continue
        # Deleted/defaulted special members are declarations, not ownership.
        line = re.sub(r"=\s*(delete|default)\b", "", line)
        for m in NEW_DELETE_PATTERN.finditer(line):
            findings.append(Finding(
                rel, lineno, "naked-new",
                f"naked '{m.group(1)}'; use std::make_unique/"
                "std::make_shared or a container"))


def check_threads(rel, code_lines, raw_lines, findings):
    if rel in THREAD_EXEMPT:
        return
    for lineno, line in enumerate(code_lines, 1):
        m = THREAD_PATTERN.search(line)
        if m:
            findings.append(Finding(
                rel, lineno, "raw-thread",
                f"'{m.group(0)}' outside the ThreadPool; ad-hoc threads "
                "break the deterministic ParallelFor execution model"))


def check_float(rel, code_lines, raw_lines, findings):
    if not rel.startswith(FLOAT_SCOPES):
        return
    for lineno, line in enumerate(code_lines, 1):
        if FLOAT_PATTERN.search(line):
            findings.append(Finding(
                rel, lineno, "no-float",
                "'float' in the double-only numeric core; mixed precision "
                "breaks bitwise replay determinism"))


def check_simd_confinement(rel, code_lines, raw_lines, findings):
    if rel.startswith(SIMD_SCOPE):
        return
    # Include scan runs on raw lines: the angle-bracket path survives
    # stripping, but keep both scans consistent with the obs include check.
    for lineno, raw in enumerate(raw_lines, 1):
        if SIMD_INCLUDE_PATTERN.search(raw):
            findings.append(Finding(
                rel, lineno, "simd-confinement",
                "vendor intrinsics header included outside src/linalg/simd/; "
                "use the dispatching primitives in linalg/simd/simd.h"))
    for lineno, line in enumerate(code_lines, 1):
        m = SIMD_TOKEN_PATTERN.search(line)
        if m:
            findings.append(Finding(
                rel, lineno, "simd-confinement",
                f"'{m.group(0)}' intrinsic outside src/linalg/simd/; use "
                "the dispatching primitives in linalg/simd/simd.h"))


def check_unbounded_wait(rel, code_lines, raw_lines, findings):
    if not rel.startswith(TEST_SCOPE):
        return
    for lineno, line in enumerate(code_lines, 1):
        m = SLEEP_PATTERN.search(line)
        if m:
            findings.append(Finding(
                rel, lineno, "unbounded-wait",
                f"'{m.group(0).strip()}' wall-clock sleep in a test; "
                "timing-based synchronization is flaky on loaded CI — use "
                "simulated time or an explicitly bounded wait"))
        m = NAKED_WAIT_PATTERN.search(line)
        if m:
            findings.append(Finding(
                rel, lineno, "unbounded-wait",
                "naked 'wait()' with no timeout in a test; a missed "
                "notification deadlocks the suite — use wait_for/"
                "wait_until with an explicit bound"))


def check_obs_discipline(rel, code_lines, raw_lines, findings):
    if rel.startswith(OBS_SCOPE):
        # Inside the observability layer: no randomness, so enabling a
        # trace can never shift a downstream sample. The include check
        # scans raw lines because strip_comments_and_strings blanks the
        # quoted include path.
        for lineno, raw in enumerate(raw_lines, 1):
            if OBS_RNG_INCLUDE_PATTERN.search(raw):
                findings.append(Finding(
                    rel, lineno, "obs-discipline",
                    "src/obs must not include common/rng.h; observability "
                    "code may not consume RNG draws"))
        for lineno, line in enumerate(code_lines, 1):
            if OBS_RNG_USE_PATTERN.search(line):
                findings.append(Finding(
                    rel, lineno, "obs-discipline",
                    "'Rng' inside src/obs; observability code may not "
                    "consume RNG draws, or tracing would perturb replay"))
        return
    # Outside it: no wall-clock reads; all timing flows through the
    # monotonic tracer so traces stay comparable and replay-stable.
    for lineno, line in enumerate(code_lines, 1):
        m = WALL_CLOCK_PATTERN.search(line)
        if m:
            findings.append(Finding(
                rel, lineno, "obs-discipline",
                f"'{m.group(0).strip()}' wall-clock read outside src/obs/; "
                "time measurements go through the monotonic tracer "
                "(obs/trace.h) or std::chrono::steady_clock"))


STATEMENT_CALL = r"^\s*(?:[\w\[\]]+(?:\.|->))*{name}\s*\("
IGNORE_STATEMENT = re.compile(
    r"=|\breturn\b|\(void\)|RESTUNE_|EXPECT_|ASSERT_|CHECK\(|\bco_return\b")


def check_ignored_status(rel, code_text, status_functions, findings):
    # Statement-level scan: split the comment/string-stripped code on ';'
    # and flag statements that *start* with a call to a Status-returning
    # function (possibly via object.method / pointer->method) and neither
    # consume nor forward the result. AST-lite on purpose: names whose
    # declarations are ambiguous never enter `status_functions`.
    line = 1
    call_head = re.compile(r"^((?:[\w\[\]]+(?:\.|->))*)(\w+)\s*\(")
    for statement in code_text.split(";"):
        # A chunk between semicolons may drag along the tail of an enclosing
        # construct (`void F() {\n  session.Begin(...)`) — the statement
        # proper starts after the last brace.
        brace = max(statement.rfind("{"), statement.rfind("}"))
        tail = statement[brace + 1:] if brace >= 0 else statement
        stripped = tail.strip()
        if stripped and not IGNORE_STATEMENT.search(stripped):
            m = call_head.match(stripped)
            if m and m.group(2) in status_functions:
                name = m.group(2)
                pos = brace + 1 + (len(tail) - len(tail.lstrip())) + m.start(2)
                call_line = line + statement[:pos].count("\n")
                findings.append(Finding(
                    rel, call_line, "ignored-status",
                    f"result of '{name}(...)' (returns Status/Result) is "
                    "discarded; propagate it, check .ok(), or cast to "
                    "(void) with a reason"))
        line += statement.count("\n")


def check_include_guard(rel, raw_text, findings):
    guard = expected_guard(rel)
    lines = raw_text.splitlines()
    if "#pragma once" in raw_text:
        line = next((i for i, l in enumerate(lines, 1)
                     if "#pragma once" in l), 1)
        findings.append(Finding(
            rel, line, "include-guard",
            f"'#pragma once' — use the path-derived guard {guard}"))
        return
    m_ifndef = re.search(r"^#ifndef\s+(\S+)", raw_text, re.MULTILINE)
    m_define = re.search(r"^#define\s+(\S+)", raw_text, re.MULTILINE)
    if not m_ifndef or not m_define or m_ifndef.group(1) != guard \
            or m_define.group(1) != guard:
        got = m_ifndef.group(1) if m_ifndef else "(none)"
        findings.append(Finding(
            rel, 1, "include-guard",
            f"include guard is {got}, expected path-derived {guard}"))
        return
    if "#endif" not in raw_text:
        findings.append(Finding(
            rel, len(lines), "include-guard",
            f"missing closing #endif for guard {guard}"))


def gather_files(paths, root):
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            candidates = [full]
        else:
            candidates = []
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames[:] = [d for d in dirnames
                               if d not in ("build", ".git")]
                for name in sorted(filenames):
                    candidates.append(os.path.join(dirpath, name))
        for c in candidates:
            if c.endswith(CXX_EXTENSIONS):
                rel = os.path.relpath(c, root).replace(os.sep, "/")
                with open(c, encoding="utf-8") as f:
                    files.append((c, rel, f.read()))
    return files


def run_lint(paths, root, allowlist_path):
    allowlist = load_allowlist(allowlist_path)
    files = gather_files(paths, root)
    status_functions = collect_status_functions(files)
    findings = []
    for _path, rel, text in files:
        raw_lines = text.splitlines()
        code_text = strip_comments_and_strings(text)
        code_lines = code_text.splitlines()
        file_findings = []
        check_rng(rel, code_lines, raw_lines, file_findings)
        check_new_delete(rel, code_lines, raw_lines, file_findings)
        check_threads(rel, code_lines, raw_lines, file_findings)
        check_float(rel, code_lines, raw_lines, file_findings)
        check_simd_confinement(rel, code_lines, raw_lines, file_findings)
        check_unbounded_wait(rel, code_lines, raw_lines, file_findings)
        check_obs_discipline(rel, code_lines, raw_lines, file_findings)
        check_ignored_status(rel, code_text, status_functions, file_findings)
        if is_header(rel):
            check_include_guard(rel, text, file_findings)
        for f in file_findings:
            # Inline suppression applies on the offending line or, for lines
            # with no room for a trailing comment, on the line above.
            local = set()
            if 1 <= f.line <= len(raw_lines):
                local |= inline_allowed_rules(raw_lines[f.line - 1])
            if f.line >= 2:
                local |= inline_allowed_rules(raw_lines[f.line - 2])
            if f.rule in local or allowed(f, allowlist):
                continue
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint (repo-relative)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array on stdout")
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             "<root>/tools/lint_allowlist.txt)")
    args = parser.parse_args(argv)

    root = os.path.abspath(
        args.root or os.path.join(os.path.dirname(__file__), os.pardir))
    allowlist_path = args.allowlist
    if allowlist_path is None:
        allowlist_path = os.path.join(root, "tools", "lint_allowlist.txt")

    findings = run_lint(args.paths, root, allowlist_path)

    if args.json:
        json.dump([f.as_dict() for f in findings], sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for f in findings:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        if findings:
            print(f"\nrestune_lint: {len(findings)} finding(s)")
        else:
            print("restune_lint: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
