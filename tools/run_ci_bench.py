#!/usr/bin/env python3
"""Run the CI perf-gate benchmarks and emit a BENCH_<PR>.json artifact.

Runs each given google-benchmark binary with repetitions, collects the
median-CPU-time aggregates from the JSON report, and writes one JSON line
per benchmark configuration:

    {"bench": "BM_TuningSessionShort", "n": 15, "threads": 4,
     "cpu_ms_median": 241.7, "iterations": 5}

* ``bench`` is the benchmark's base name; argument positions beyond the
  first two (e.g. the scalar-vs-batch flag of BM_AcquisitionThroughput)
  are folded into the name as ``/arg`` so every line keys uniquely on
  (bench, n, threads).
* ``n`` and ``threads`` are the first two benchmark arguments (0 if the
  benchmark takes fewer).
* ``cpu_ms_median`` is the median CPU time across repetitions, in ms.
* ``iterations`` is the repetition count the median was computed over.
* Numeric user counters from the median aggregate (e.g. bench_fleet's
  ``recs_per_sec`` and ``p99_ms`` for the BENCH_9 wire-service rows) are
  folded into the record verbatim, so throughput/latency gates can key on
  them alongside CPU time.

The JSON report is taken via --benchmark_out (not stdout) because some
benchmarks print their own diagnostic lines.

Usage:
    run_ci_bench.py --out BENCH_<PR>.json [--repetitions N]
                    BINARY[:BENCHMARK_FILTER] ...

The output name is an argument, not baked in: CI passes BENCH_<PR>.json
where <PR> is the current PR number in the stacked sequence (the
numbering convention is documented in docs/OBSERVABILITY.md). Keeping
the name out of this script means a new PR only touches the workflow.

Stdlib only; the regression gate is tools/check_bench_regression.py.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

TIME_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def parse_run_name(run_name):
    """Splits 'BM_Name/50/1/0' into ('BM_Name/0', 50, 1).

    The first two numeric arguments become n and threads; any further
    arguments are appended back onto the bench name so configurations
    that differ only in later arguments stay distinct.
    """
    parts = run_name.split("/")
    base = parts[0]
    args = []
    extra = []
    for part in parts[1:]:
        try:
            value = int(part)
        except ValueError:
            # Named or non-numeric components (e.g. 'real_time') stay in
            # the bench name.
            extra.append(part)
            continue
        if len(args) < 2:
            args.append(value)
        else:
            extra.append(part)
    while len(args) < 2:
        args.append(0)
    bench = "/".join([base] + extra)
    return bench, args[0], args[1]


# Keys google-benchmark itself writes into every report entry; anything
# else numeric is a user counter and is folded into the bench record.
STANDARD_ENTRY_KEYS = frozenset([
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "aggregate_name", "aggregate_unit", "family_index",
    "per_family_instance_index", "label", "error_occurred", "error_message",
])


def collect_from_report(report):
    """Yields bench-record dicts from a google-benchmark JSON report."""
    for entry in report.get("benchmarks", []):
        if entry.get("run_type") != "aggregate":
            continue
        if entry.get("aggregate_name") != "median":
            continue
        unit = entry.get("time_unit", "ns")
        if unit not in TIME_UNIT_TO_MS:
            raise ValueError("unknown time unit %r in %r" %
                             (unit, entry.get("name")))
        bench, n, threads = parse_run_name(entry["run_name"])
        record = {
            "bench": bench,
            "n": n,
            "threads": threads,
            "cpu_ms_median": round(
                float(entry["cpu_time"]) * TIME_UNIT_TO_MS[unit], 3),
            "iterations": int(entry.get("iterations", 0)),
        }
        for key, value in entry.items():
            if key in STANDARD_ENTRY_KEYS or key in record:
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                record[key] = round(float(value), 3)
        yield record


def run_binary(binary, bench_filter, repetitions):
    """Runs one benchmark binary, returns its parsed JSON report."""
    fd, report_path = tempfile.mkstemp(suffix=".json", prefix="bench_")
    os.close(fd)
    cmd = [
        binary,
        "--benchmark_out=%s" % report_path,
        "--benchmark_out_format=json",
        "--benchmark_repetitions=%d" % repetitions,
        "--benchmark_report_aggregates_only=true",
    ]
    if bench_filter:
        cmd.append("--benchmark_filter=%s" % bench_filter)
    try:
        print("+ %s" % " ".join(cmd), flush=True)
        subprocess.run(cmd, check=True)
        with open(report_path) as f:
            return json.load(f)
    finally:
        os.unlink(report_path)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True,
                        help="output path for the bench artifact, e.g. "
                             "BENCH_8.json (JSON lines)")
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("binaries", nargs="+", metavar="BINARY[:FILTER]")
    args = parser.parse_args(argv)

    lines = []
    for spec in args.binaries:
        binary, _, bench_filter = spec.partition(":")
        report = run_binary(binary, bench_filter, args.repetitions)
        lines.extend(collect_from_report(report))

    if not lines:
        print("error: no median aggregates collected", file=sys.stderr)
        return 1
    lines.sort(key=lambda r: (r["bench"], r["n"], r["threads"]))
    with open(args.out, "w") as f:
        for record in lines:
            f.write(json.dumps(record, sort_keys=True) + "\n")
    print("wrote %d benchmark records to %s" % (len(lines), args.out))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
