#!/usr/bin/env bash
# Verifies that every C++ source in src/ tests/ bench/ examples/ matches the
# repo .clang-format. Read-only: prints a diff per violating file and exits 1;
# it never rewrites sources (run `clang-format -i` yourself to fix).
#
# When clang-format is not installed (the default dev container ships gcc
# only), the check SKIPS with exit 0 so local ctest runs stay green; CI
# installs clang-format and gets the real verdict.
set -u -o pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: $CLANG_FORMAT not found; skipping (install clang-format to enable)"
  exit 0
fi

status=0
checked=0
while IFS= read -r -d '' file; do
  checked=$((checked + 1))
  if ! diff -u --label "$file (repo)" --label "$file (clang-format)" \
      "$file" <("$CLANG_FORMAT" --style=file "$file"); then
    status=1
  fi
done < <(find src tests bench examples \
              \( -name '*.cc' -o -name '*.h' \) -print0 | sort -z)

if [ "$status" -ne 0 ]; then
  echo "check_format: formatting violations found (see diffs above)."
  echo "check_format: fix with: $CLANG_FORMAT -i <file>"
else
  echo "check_format: $checked files clean"
fi
exit "$status"
