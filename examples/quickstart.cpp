// Quickstart: tune the CPU utilization of a simulated MySQL instance with
// constrained Bayesian optimization, keeping the default configuration's
// throughput and latency as the SLA.
//
// This is the smallest end-to-end use of the library:
//   1. pick a knob space, an instance type and a workload;
//   2. build the simulated DBMS copy;
//   3. run a tuning session with the ResTune advisor (no history here —
//      see meta_learning_transfer.cpp for the boosted version);
//   4. inspect the recommended knobs.

#include <cstdio>

#include "common/logging.h"
#include "tuner/harness.h"

using namespace restune;

int main() {
  Logger::SetThreshold(LogLevel::kWarning);

  // 1. The 14-knob CPU space, cloud instance E (32 cores / 64 GB), and the
  //    Twitter-like benchmark workload from the paper's Table 2.
  const KnobSpace space = CpuKnobSpace();
  const WorkloadProfile workload =
      MakeWorkload(WorkloadKind::kTwitter).value();

  ExperimentConfig config;
  config.iterations = 40;
  config.seed = 2024;

  // 2. A simulated copy instance of the target DBMS.
  Result<DbInstanceSimulator> sim =
      MakeSimulator(space, 'E', workload, config);
  if (!sim.ok()) {
    std::fprintf(stderr, "simulator: %s\n", sim.status().ToString().c_str());
    return 1;
  }

  // 3. Constrained BO from scratch (ResTune without meta-learning).
  Result<SessionResult> result =
      RunMethod(MethodKind::kResTuneNoMl, &*sim, {}, config);
  if (!result.ok()) {
    std::fprintf(stderr, "tuning: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 4. Report.
  std::printf("workload:       %s on %s (%d cores)\n", workload.name.c_str(),
              sim->hardware().name.c_str(), sim->hardware().cores);
  std::printf("SLA:            tps >= %.0f, p99 latency <= %.2f ms\n",
              result->sla.min_tps, result->sla.max_lat);
  std::printf("default CPU:    %.1f%%\n", result->default_observation.res);
  std::printf("tuned CPU:      %.1f%% (found at iteration %d of %d)\n",
              result->best_feasible_res, result->best_iteration,
              config.iterations);

  std::printf("\nrecommended configuration:\n");
  const Vector raw = space.ToRaw(result->best_theta);
  const Vector default_raw = space.ToRaw(space.DefaultTheta());
  for (size_t i = 0; i < space.dim(); ++i) {
    std::printf("  %-32s %10.0f   (default %.0f)\n",
                space.knob(i).name.c_str(), raw[i], default_raw[i]);
  }

  const PerfMetrics tuned = sim->EvaluateExact(result->best_theta).value();
  std::printf("\nverification (noise-free replay): tps=%.0f lat=%.2fms "
              "cpu=%.1f%%\n", tuned.tps, tuned.latency_p99_ms,
              tuned.cpu_util_pct);
  return 0;
}
