// restune_cli — command-line front end for the library: run a tuning
// session against the simulated DBMS from flags, optionally boosted by a
// repository file, and print the recommendation.
//
// Usage:
//   restune_cli [--workload sysbench|tpcc|twitter|hotel|sales]
//               [--instance A..F] [--resource cpu|memory|io_bps|io_iops]
//               [--iterations N] [--seed S]
//               [--method restune|noml|ituned|ottertune|cdbtune]
//               [--repository file.txt] [--save-repository file.txt]
//               [--data-gb G] [--trace-out trace.jsonl]
//
// With --save-repository, the finished session's observations are appended
// to the repository file so later runs start warm (the paper's flywheel).
// With --trace-out, the session's spans and final counters are written as
// JSON lines (see docs/OBSERVABILITY.md for the schema).

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "obs/trace.h"
#include "tuner/harness.h"

using namespace restune;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: restune_cli [--workload W] [--instance A-F] [--resource R]\n"
      "                   [--iterations N] [--seed S] [--method M]\n"
      "                   [--repository FILE] [--save-repository FILE]\n"
      "                   [--data-gb G] [--trace-out FILE]\n");
}

}  // namespace

int main(int argc, char** argv) {
  Logger::SetThreshold(LogLevel::kWarning);

  std::string workload_name = "twitter";
  char instance = 'E';
  std::string resource = "cpu";
  std::string method_name = "restune";
  std::string repository_path, save_repository_path;
  std::string trace_out_path;
  double data_gb = 0.0;
  ExperimentConfig config;
  config.iterations = 50;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workload") {
      const char* v = next();
      if (!v) return Usage(), 2;
      workload_name = v;
    } else if (arg == "--instance") {
      const char* v = next();
      if (!v || std::strlen(v) != 1) return Usage(), 2;
      instance = v[0];
    } else if (arg == "--resource") {
      const char* v = next();
      if (!v) return Usage(), 2;
      resource = v;
    } else if (arg == "--iterations") {
      const char* v = next();
      if (!v) return Usage(), 2;
      config.iterations = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return Usage(), 2;
      config.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--method") {
      const char* v = next();
      if (!v) return Usage(), 2;
      method_name = v;
    } else if (arg == "--repository") {
      const char* v = next();
      if (!v) return Usage(), 2;
      repository_path = v;
    } else if (arg == "--save-repository") {
      const char* v = next();
      if (!v) return Usage(), 2;
      save_repository_path = v;
    } else if (arg == "--data-gb") {
      const char* v = next();
      if (!v) return Usage(), 2;
      data_gb = std::atof(v);
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return Usage(), 2;
      trace_out_path = v;
    } else {
      Usage();
      return 2;
    }
  }

  // Resolve flags.
  WorkloadKind kind;
  if (workload_name == "sysbench") kind = WorkloadKind::kSysbench;
  else if (workload_name == "tpcc") kind = WorkloadKind::kTpcc;
  else if (workload_name == "twitter") kind = WorkloadKind::kTwitter;
  else if (workload_name == "hotel") kind = WorkloadKind::kHotel;
  else if (workload_name == "sales") kind = WorkloadKind::kSales;
  else return Usage(), 2;

  if (resource == "cpu") config.resource = ResourceKind::kCpu;
  else if (resource == "memory") config.resource = ResourceKind::kMemory;
  else if (resource == "io_bps") config.resource = ResourceKind::kIoBps;
  else if (resource == "io_iops") config.resource = ResourceKind::kIoIops;
  else return Usage(), 2;

  MethodKind method;
  if (method_name == "restune") method = MethodKind::kResTune;
  else if (method_name == "noml") method = MethodKind::kResTuneNoMl;
  else if (method_name == "ituned") method = MethodKind::kITuned;
  else if (method_name == "ottertune") method = MethodKind::kOtterTune;
  else if (method_name == "cdbtune") method = MethodKind::kCdbTune;
  else return Usage(), 2;

  const Result<HardwareSpec> hw = HardwareInstance(instance);
  if (!hw.ok()) {
    std::fprintf(stderr, "%s\n", hw.status().ToString().c_str());
    return 1;
  }
  const Result<WorkloadProfile> workload = MakeWorkload(kind, data_gb);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  const KnobSpace space = config.resource == ResourceKind::kMemory
                              ? MemoryKnobSpace(hw->ram_gb)
                              : config.resource == ResourceKind::kCpu
                                    ? CpuKnobSpace()
                                    : IoKnobSpace();

  Result<DbInstanceSimulator> sim =
      MakeSimulator(space, instance, *workload, config);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }

  // Optional repository.
  MethodInputs inputs;
  DataRepository repo;
  const WorkloadCharacterizer characterizer = TrainDefaultCharacterizer();
  if (!repository_path.empty()) {
    const Status st = repo.LoadFromFile(repository_path);
    if (!st.ok()) {
      std::fprintf(stderr, "repository: %s\n", st.ToString().c_str());
      return 1;
    }
    inputs.base_learners = repo.TrainBaseLearners([&](const TuningTask& t) {
      return !t.observations.empty() &&
             t.observations[0].theta.size() == space.dim();
    });
    inputs.repository_tasks = repo.tasks();
    std::printf("repository: %zu tasks, %zu usable base-learners\n",
                repo.num_tasks(), inputs.base_learners.size());
  }
  inputs.target_meta_feature = ComputeMetaFeature(characterizer, *workload);

  std::printf("tuning %s on %s for %s with %s (%d iterations)...\n",
              workload->name.c_str(), hw->name.c_str(), resource.c_str(),
              MethodName(method), config.iterations);
  if (!trace_out_path.empty() &&
      !obs::Tracer::Global()->Start(trace_out_path)) {
    std::fprintf(stderr, "trace-out: cannot open '%s' for writing\n",
                 trace_out_path.c_str());
    return 1;
  }
  const Result<SessionResult> result =
      RunMethod(method, &*sim, inputs, config);
  if (!trace_out_path.empty()) {
    obs::Tracer::Global()->Stop();
    std::fprintf(stderr, "trace written to %s\n", trace_out_path.c_str());
  }
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\ndefault %s: %.2f   best feasible: %.2f  (-%.1f%%, found at "
              "iteration %d)\n",
              resource.c_str(), result->default_observation.res,
              result->best_feasible_res,
              100.0 * (result->default_observation.res -
                       result->best_feasible_res) /
                  result->default_observation.res,
              result->best_iteration);
  std::printf("\nrecommended knobs:\n");
  const Vector raw = space.ToRaw(result->best_theta);
  for (size_t i = 0; i < space.dim(); ++i) {
    std::printf("  %-36s = %.6g\n", space.knob(i).name.c_str(), raw[i]);
  }

  if (!save_repository_path.empty()) {
    TuningTask task;
    task.name = workload->name + "@" + hw->name;
    task.workload = workload->name;
    task.hardware = hw->name;
    task.meta_feature = inputs.target_meta_feature;
    task.observations.push_back(result->default_observation);
    for (const IterationRecord& rec : result->history) {
      task.observations.push_back(rec.observation);
    }
    DataRepository out = std::move(repo);
    const Status add = out.AddTask(std::move(task));
    const Status save = add.ok() ? out.SaveToFile(save_repository_path) : add;
    if (!save.ok()) {
      std::fprintf(stderr, "save-repository: %s\n", save.ToString().c_str());
      return 1;
    }
    std::printf("\nsession archived to %s (%zu tasks)\n",
                save_repository_path.c_str(), out.num_tasks());
  }
  return 0;
}
