// restune_cli — command-line front end for the library: run a tuning
// session against the simulated DBMS from flags, optionally boosted by a
// repository file, and print the recommendation.
//
// Usage:
//   restune_cli [--workload sysbench|tpcc|twitter|hotel|sales]
//               [--instance A..F] [--resource cpu|memory|io_bps|io_iops]
//               [--iterations N] [--seed S]
//               [--method restune|noml|ituned|ottertune|cdbtune]
//               [--repository file.txt] [--save-repository file.txt]
//               [--data-gb G] [--trace-out trace.jsonl]
//               [--server HOST:PORT]
//
// With --save-repository, the finished session's observations are appended
// to the repository file so later runs start warm (the paper's flywheel).
// With --trace-out, the session's spans and final counters are written as
// JSON lines (see docs/OBSERVABILITY.md for the schema).
//
// With --server, the CLI becomes the paper's client half (Figure 2): it
// keeps the workload replay local — only meta-features and metric tuples
// cross the wire — and drives a remote restune_serve process through
// TuningClient for its recommendations (docs/SERVICE.md). The server's
// advisor does the suggesting, so --method/--repository do not apply.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "obs/trace.h"
#include "service/tuning_client.h"
#include "tuner/harness.h"

using namespace restune;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: restune_cli [--workload W] [--instance A-F] [--resource R]\n"
      "                   [--iterations N] [--seed S] [--method M]\n"
      "                   [--repository FILE] [--save-repository FILE]\n"
      "                   [--data-gb G] [--trace-out FILE]\n"
      "                   [--server HOST:PORT]\n");
}

/// Remote mode: the tuning loop with the advisor on the other end of a
/// TCP connection. Replays stay local to this process (the simulator
/// stands in for the tenant DBMS); each round trip ships one
/// recommendation down and one (res, tps, lat) tuple or fault back up.
int RunRemoteSession(const std::string& server_address,
                     DbInstanceSimulator* sim, const Vector& meta_feature,
                     const std::string& resource, int iterations) {
  const size_t colon = server_address.rfind(':');
  if (colon == std::string::npos || colon + 1 == server_address.size()) {
    std::fprintf(stderr, "--server wants HOST:PORT, got '%s'\n",
                 server_address.c_str());
    return 2;
  }
  const std::string host = server_address.substr(0, colon);
  const uint16_t port =
      static_cast<uint16_t>(std::atoi(server_address.c_str() + colon + 1));

  const KnobSpace& space = sim->knob_space();
  const Result<Observation> default_obs = sim->EvaluateDefault();
  if (!default_obs.ok()) {
    std::fprintf(stderr, "%s\n", default_obs.status().ToString().c_str());
    return 1;
  }

  TargetTaskSubmission submission;
  submission.task_name =
      sim->workload().name + "@" + sim->hardware().name;
  submission.meta_feature = meta_feature;
  submission.knob_dim = space.dim();
  submission.default_theta = space.DefaultTheta();
  submission.default_observation = *default_obs;
  submission.default_observation.theta = submission.default_theta;
  submission.resource = resource;

  Result<TuningClient> client = TuningClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect %s:%u: %s\n", host.c_str(), port,
                 client.status().ToString().c_str());
    return 1;
  }
  const Result<uint64_t> session = client->StartSession(submission);
  if (!session.ok()) {
    std::fprintf(stderr, "start session: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  std::printf("tuning %s against %s:%u (session %llu, %d iterations)...\n",
              submission.task_name.c_str(), host.c_str(), port,
              static_cast<unsigned long long>(*session), iterations);

  for (int iter = 0; iter < iterations; ++iter) {
    const Result<KnobRecommendation> rec = client->Recommend(*session);
    if (!rec.ok()) {
      std::fprintf(stderr, "recommend: %s\n",
                   rec.status().ToString().c_str());
      return 1;
    }
    const Result<EvaluationOutcome> outcome = sim->TryEvaluate(rec->theta);
    if (!outcome.ok()) {
      std::fprintf(stderr, "evaluate: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    EvaluationReport report;
    report.session_id = *session;
    report.iteration = rec->iteration;
    if (outcome->ok()) {
      report.observation = outcome->observation();
      report.observation.theta = rec->theta;
    } else {
      report.fault = outcome->fault().kind;
      std::printf("  iteration %d failed: %s\n", rec->iteration,
                  FaultKindName(report.fault));
    }
    const Status reported = client->ReportEvaluation(report);
    if (!reported.ok()) {
      std::fprintf(stderr, "report: %s\n", reported.ToString().c_str());
      return 1;
    }
  }

  const Result<SessionSummary> summary = client->FinishSession(*session);
  if (!summary.ok()) {
    std::fprintf(stderr, "finish: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  std::printf("\ndefault %s: %.2f   best feasible: %.2f  (-%.1f%%, %d "
              "iterations)\n",
              resource.c_str(), default_obs->res, summary->best_feasible_res,
              100.0 * (default_obs->res - summary->best_feasible_res) /
                  default_obs->res,
              summary->iterations);
  if (summary->best_theta.size() == space.dim()) {
    std::printf("\nrecommended knobs:\n");
    const Vector raw = space.ToRaw(summary->best_theta);
    for (size_t i = 0; i < space.dim(); ++i) {
      std::printf("  %-36s = %.6g\n", space.knob(i).name.c_str(), raw[i]);
    }
  }
  if (summary->archived_to_repository) {
    std::printf("\nsession archived to the server's repository\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Logger::SetThreshold(LogLevel::kWarning);

  std::string workload_name = "twitter";
  char instance = 'E';
  std::string resource = "cpu";
  std::string method_name = "restune";
  std::string repository_path, save_repository_path;
  std::string trace_out_path;
  std::string server_address;
  double data_gb = 0.0;
  ExperimentConfig config;
  config.iterations = 50;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workload") {
      const char* v = next();
      if (!v) return Usage(), 2;
      workload_name = v;
    } else if (arg == "--instance") {
      const char* v = next();
      if (!v || std::strlen(v) != 1) return Usage(), 2;
      instance = v[0];
    } else if (arg == "--resource") {
      const char* v = next();
      if (!v) return Usage(), 2;
      resource = v;
    } else if (arg == "--iterations") {
      const char* v = next();
      if (!v) return Usage(), 2;
      config.iterations = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return Usage(), 2;
      config.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--method") {
      const char* v = next();
      if (!v) return Usage(), 2;
      method_name = v;
    } else if (arg == "--repository") {
      const char* v = next();
      if (!v) return Usage(), 2;
      repository_path = v;
    } else if (arg == "--save-repository") {
      const char* v = next();
      if (!v) return Usage(), 2;
      save_repository_path = v;
    } else if (arg == "--data-gb") {
      const char* v = next();
      if (!v) return Usage(), 2;
      data_gb = std::atof(v);
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return Usage(), 2;
      trace_out_path = v;
    } else if (arg == "--server") {
      const char* v = next();
      if (!v) return Usage(), 2;
      server_address = v;
    } else {
      Usage();
      return 2;
    }
  }

  // Resolve flags.
  WorkloadKind kind;
  if (workload_name == "sysbench") kind = WorkloadKind::kSysbench;
  else if (workload_name == "tpcc") kind = WorkloadKind::kTpcc;
  else if (workload_name == "twitter") kind = WorkloadKind::kTwitter;
  else if (workload_name == "hotel") kind = WorkloadKind::kHotel;
  else if (workload_name == "sales") kind = WorkloadKind::kSales;
  else return Usage(), 2;

  if (resource == "cpu") config.resource = ResourceKind::kCpu;
  else if (resource == "memory") config.resource = ResourceKind::kMemory;
  else if (resource == "io_bps") config.resource = ResourceKind::kIoBps;
  else if (resource == "io_iops") config.resource = ResourceKind::kIoIops;
  else return Usage(), 2;

  MethodKind method;
  if (method_name == "restune") method = MethodKind::kResTune;
  else if (method_name == "noml") method = MethodKind::kResTuneNoMl;
  else if (method_name == "ituned") method = MethodKind::kITuned;
  else if (method_name == "ottertune") method = MethodKind::kOtterTune;
  else if (method_name == "cdbtune") method = MethodKind::kCdbTune;
  else return Usage(), 2;

  const Result<HardwareSpec> hw = HardwareInstance(instance);
  if (!hw.ok()) {
    std::fprintf(stderr, "%s\n", hw.status().ToString().c_str());
    return 1;
  }
  const Result<WorkloadProfile> workload = MakeWorkload(kind, data_gb);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  const KnobSpace space = config.resource == ResourceKind::kMemory
                              ? MemoryKnobSpace(hw->ram_gb)
                              : config.resource == ResourceKind::kCpu
                                    ? CpuKnobSpace()
                                    : IoKnobSpace();

  Result<DbInstanceSimulator> sim =
      MakeSimulator(space, instance, *workload, config);
  if (!sim.ok()) {
    std::fprintf(stderr, "%s\n", sim.status().ToString().c_str());
    return 1;
  }

  if (!server_address.empty()) {
    const WorkloadCharacterizer remote_characterizer =
        TrainDefaultCharacterizer();
    return RunRemoteSession(
        server_address, &*sim,
        ComputeMetaFeature(remote_characterizer, *workload), resource,
        config.iterations);
  }

  // Optional repository.
  MethodInputs inputs;
  DataRepository repo;
  const WorkloadCharacterizer characterizer = TrainDefaultCharacterizer();
  if (!repository_path.empty()) {
    const Status st = repo.LoadFromFile(repository_path);
    if (!st.ok()) {
      std::fprintf(stderr, "repository: %s\n", st.ToString().c_str());
      return 1;
    }
    inputs.base_learners = repo.TrainBaseLearners([&](const TuningTask& t) {
      return !t.observations.empty() &&
             t.observations[0].theta.size() == space.dim();
    });
    inputs.repository_tasks = repo.tasks();
    std::printf("repository: %zu tasks, %zu usable base-learners\n",
                repo.num_tasks(), inputs.base_learners.size());
  }
  inputs.target_meta_feature = ComputeMetaFeature(characterizer, *workload);

  std::printf("tuning %s on %s for %s with %s (%d iterations)...\n",
              workload->name.c_str(), hw->name.c_str(), resource.c_str(),
              MethodName(method), config.iterations);
  if (!trace_out_path.empty() &&
      !obs::Tracer::Global()->Start(trace_out_path)) {
    std::fprintf(stderr, "trace-out: cannot open '%s' for writing\n",
                 trace_out_path.c_str());
    return 1;
  }
  const Result<SessionResult> result =
      RunMethod(method, &*sim, inputs, config);
  if (!trace_out_path.empty()) {
    obs::Tracer::Global()->Stop();
    std::fprintf(stderr, "trace written to %s\n", trace_out_path.c_str());
  }
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\ndefault %s: %.2f   best feasible: %.2f  (-%.1f%%, found at "
              "iteration %d)\n",
              resource.c_str(), result->default_observation.res,
              result->best_feasible_res,
              100.0 * (result->default_observation.res -
                       result->best_feasible_res) /
                  result->default_observation.res,
              result->best_iteration);
  std::printf("\nrecommended knobs:\n");
  const Vector raw = space.ToRaw(result->best_theta);
  for (size_t i = 0; i < space.dim(); ++i) {
    std::printf("  %-36s = %.6g\n", space.knob(i).name.c_str(), raw[i]);
  }

  if (!save_repository_path.empty()) {
    TuningTask task;
    task.name = workload->name + "@" + hw->name;
    task.workload = workload->name;
    task.hardware = hw->name;
    task.meta_feature = inputs.target_meta_feature;
    task.observations.push_back(result->default_observation);
    for (const IterationRecord& rec : result->history) {
      task.observations.push_back(rec.observation);
    }
    DataRepository out = std::move(repo);
    const Status add = out.AddTask(std::move(task));
    const Status save = add.ok() ? out.SaveToFile(save_repository_path) : add;
    if (!save.ok()) {
      std::fprintf(stderr, "save-repository: %s\n", save.ToString().c_str());
      return 1;
    }
    std::printf("\nsession archived to %s (%zu tasks)\n",
                save_repository_path.c_str(), out.num_tasks());
  }
  return 0;
}
