// Meta-learning transfer: the cloud-provider scenario from the paper's
// introduction. A provider has accumulated tuning histories from many
// (workload, instance) pairs; when a new tenant's tuning task arrives,
// ResTune combines the historical base-learners into a meta-learner and
// finds a good configuration in a handful of iterations — here compared
// head-to-head against learning from scratch.

#include <cstdio>

#include "common/logging.h"
#include "tuner/harness.h"

using namespace restune;

int main() {
  Logger::SetThreshold(LogLevel::kWarning);

  const KnobSpace space = CpuKnobSpace();
  ExperimentConfig config;
  config.iterations = 30;
  config.seed = 7;

  // --- Provider side: accumulate history and train the characterizer. ----
  std::printf("building the data repository (17 workloads x instances A,B)"
              "...\n");
  const WorkloadCharacterizer characterizer = TrainDefaultCharacterizer();
  const DataRepository repo =
      BuildPaperRepository(space, characterizer, config, 60);
  std::printf("  %zu historical tasks collected\n", repo.num_tasks());

  // --- New tenant: the Hotel booking workload on an unseen instance D. ---
  const WorkloadProfile target = MakeWorkload(WorkloadKind::kHotel).value();

  // Hold out the target's own history: the transfer must come from other
  // workloads (the paper's varying-workloads setting).
  MethodInputs inputs;
  inputs.base_learners = repo.TrainHoldOutWorkload(target.name);
  inputs.repository_tasks = repo.tasks();
  inputs.target_meta_feature = ComputeMetaFeature(characterizer, target);
  std::printf("  %zu base-learners available after holding out '%s'\n",
              inputs.base_learners.size(), target.name.c_str());

  // --- Tune with and without the repository. -----------------------------
  auto sim_boosted = MakeSimulator(space, 'D', target, config).value();
  const auto boosted =
      RunMethod(MethodKind::kResTune, &sim_boosted, inputs, config);
  auto sim_scratch = MakeSimulator(space, 'D', target, config).value();
  const auto scratch =
      RunMethod(MethodKind::kResTuneNoMl, &sim_scratch, {}, config);
  if (!boosted.ok() || !scratch.ok()) {
    std::fprintf(stderr, "tuning failed\n");
    return 1;
  }

  std::printf("\n%-10s %22s %22s\n", "iteration", "ResTune (boosted)",
              "ResTune-w/o-ML");
  auto curve = [](const SessionResult& r, int iter) {
    double best = r.default_observation.res;
    for (const IterationRecord& rec : r.history) {
      if (rec.iteration > iter) break;
      best = rec.best_feasible_res;
    }
    return best;
  };
  for (int iter = 0; iter <= config.iterations; iter += 5) {
    std::printf("%-10d %21.1f%% %21.1f%%\n", iter, curve(*boosted, iter),
                curve(*scratch, iter));
  }

  std::printf("\ndefault CPU %.1f%%; boosted best %.1f%% @iter %d; "
              "scratch best %.1f%% @iter %d\n",
              boosted->default_observation.res, boosted->best_feasible_res,
              boosted->best_iteration, scratch->best_feasible_res,
              scratch->best_iteration);
  std::printf("replay time saved by the boost: each iteration costs %.0f "
              "simulated seconds on this\nproduction-style workload, so "
              "reaching a good configuration tens of iterations earlier\n"
              "is the difference between minutes and hours of tuning "
              "(paper Section 1).\n",
              sim_boosted.options().replay_seconds);
  return 0;
}
