// restune_serve — the ResTune tuning service as a standalone process: one
// ResTuneServer behind a WireServer, the deployment shape of paper Figure
// 2 (provider-side tuning cluster, tenant clients in their own VPCs). Any
// number of `restune_cli --server HOST:PORT` runs can tune against it
// concurrently; docs/SERVICE.md describes the wire protocol it speaks.
//
// Usage:
//   restune_serve [--port N] [--bind ADDR] [--max-connections N]
//                 [--checkpoint FILE] [--checkpoint-period N]
//                 [--event-sessions] [--verbose]
//
// With --checkpoint, the server resumes from FILE when it exists and
// snapshots itself there every --checkpoint-period state-changing calls,
// so a kill-and-restart replays in-flight sessions idempotently (clients
// simply retry and see the same recommendations). The process serves
// until stdin reaches EOF (Ctrl-D, or the parent closing the pipe), then
// shuts down cleanly — the pattern scripts and tests use to stop it
// without signal handling.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "service/restune_server.h"
#include "service/wire_server.h"

using namespace restune;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: restune_serve [--port N] [--bind ADDR] [--max-connections N]\n"
      "                     [--checkpoint FILE] [--checkpoint-period N]\n"
      "                     [--event-sessions] [--verbose]\n");
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Logger::SetThreshold(LogLevel::kWarning);

  ServerOptions server_options;
  WireServerOptions wire_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (!v) return Usage(), 2;
      wire_options.loop.port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--bind") {
      const char* v = next();
      if (!v) return Usage(), 2;
      wire_options.loop.bind_address = v;
    } else if (arg == "--max-connections") {
      const char* v = next();
      if (!v) return Usage(), 2;
      wire_options.loop.max_connections = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--checkpoint") {
      const char* v = next();
      if (!v) return Usage(), 2;
      server_options.checkpoint_path = v;
    } else if (arg == "--checkpoint-period") {
      const char* v = next();
      if (!v) return Usage(), 2;
      server_options.checkpoint_period = std::atoi(v);
    } else if (arg == "--event-sessions") {
      server_options.use_event_sessions = true;
    } else if (arg == "--verbose") {
      Logger::SetThreshold(LogLevel::kInfo);
    } else {
      Usage();
      return 2;
    }
  }

  ResTuneServer server(server_options);
  if (!server_options.checkpoint_path.empty() &&
      FileExists(server_options.checkpoint_path)) {
    const Status st = server.LoadCheckpointFile(server_options.checkpoint_path);
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("resumed from %s (%zu active sessions)\n",
                server_options.checkpoint_path.c_str(),
                server.active_sessions());
  }

  WireServer wire(&server, wire_options);
  const Status st = wire.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("restune_serve listening on %s:%u%s\n",
              wire_options.loop.bind_address.c_str(), wire.port(),
              server_options.use_event_sessions ? " (event sessions)" : "");
  std::printf("serving until stdin EOF...\n");
  std::fflush(stdout);

  // Blocks the main thread until the parent closes our stdin; the wire
  // loop serves on its own thread the whole time.
  while (std::getchar() != EOF) {
  }

  wire.Stop();
  std::printf("shut down; %zu sessions still active\n",
              server.active_sessions());
  return 0;
}
