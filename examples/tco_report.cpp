// TCO report: the end-user story from the paper's TCO analysis
// (Section 7.6). Tune CPU and memory for a tenant's workload, translate
// the recovered resources into a 1-year total-cost-of-ownership reduction
// across AWS, Azure and Aliyun, and print a right-sizing recommendation.

#include <cstdio>

#include "analysis/tco.h"
#include "common/logging.h"
#include "tuner/harness.h"

using namespace restune;

int main() {
  Logger::SetThreshold(LogLevel::kWarning);

  const char kInstance = 'E';
  const HardwareSpec hw = HardwareInstance(kInstance).value();
  const WorkloadProfile workload =
      MakeWorkload(WorkloadKind::kTpcc, 100).value();

  ExperimentConfig config;
  config.iterations = 40;
  config.seed = 11;

  // --- CPU tuning ---------------------------------------------------------
  auto cpu_sim = MakeSimulator(CpuKnobSpace(), kInstance, workload, config)
                     .value();
  const auto cpu = RunMethod(MethodKind::kResTuneNoMl, &cpu_sim, {}, config);
  if (!cpu.ok()) {
    std::fprintf(stderr, "CPU tuning failed\n");
    return 1;
  }
  const int cores_before =
      CoresUsed(cpu->default_observation.res, hw.cores);
  const int cores_after = CoresUsed(cpu->best_feasible_res, hw.cores);

  // --- Memory tuning --------------------------------------------------------
  ExperimentConfig mem_config = config;
  mem_config.resource = ResourceKind::kMemory;
  auto mem_sim =
      MakeSimulator(MemoryKnobSpace(hw.ram_gb), kInstance, workload,
                    mem_config)
          .value();
  const auto mem =
      RunMethod(MethodKind::kResTuneNoMl, &mem_sim, {}, mem_config);
  if (!mem.ok()) {
    std::fprintf(stderr, "memory tuning failed\n");
    return 1;
  }

  // --- Report ----------------------------------------------------------------
  std::printf("TCO report: %s on %s (%d cores, %.0f GB)\n",
              workload.name.c_str(), hw.name.c_str(), hw.cores, hw.ram_gb);
  std::printf("\nCPU:    %.1f%% -> %.1f%%  (%d -> %d cores)\n",
              cpu->default_observation.res, cpu->best_feasible_res,
              cores_before, cores_after);
  std::printf("Memory: %.1f GB -> %.1f GB\n", mem->default_observation.res,
              mem->best_feasible_res);

  std::printf("\n1-year TCO reduction:\n");
  std::printf("  %-8s %14s %14s %12s\n", "Cloud", "CPU saving",
              "Memory saving", "Total");
  double total_avg = 0.0;
  for (CloudProvider p : {CloudProvider::kAws, CloudProvider::kAzure,
                          CloudProvider::kAliyun}) {
    const double cpu_saving = CpuTcoReduction(cores_before, cores_after, p);
    const double mem_saving = MemoryTcoReduction(
        mem->default_observation.res, mem->best_feasible_res, p);
    total_avg += (cpu_saving + mem_saving) / 3.0;
    std::printf("  %-8s %13.0f$ %13.0f$ %11.0f$\n", CloudProviderName(p),
                cpu_saving, mem_saving, cpu_saving + mem_saving);
  }
  std::printf("\naverage across clouds: $%.0f per year\n", total_avg);

  if (cores_after <= hw.cores / 2 &&
      mem->best_feasible_res <= hw.ram_gb / 2) {
    std::printf("recommendation: this tenant fits a half-size instance — "
                "consider right-sizing\ninstead of over-provisioning "
                "(paper Section 1).\n");
  }
  return 0;
}
