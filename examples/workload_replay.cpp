// Workload replay & characterization: the ResTune-Client side of the
// system (paper Section 4). Demonstrates:
//   1. capturing a window of a tenant's SQL traffic;
//   2. extracting query templates so writes can be replayed without
//      primary-key collisions;
//   3. re-instantiating and rate-controlling the replay;
//   4. computing the workload's meta-feature embedding (Section 6.2).

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "ml/sql_tokens.h"
#include "sqlgen/generator.h"
#include "sqlgen/replayer.h"
#include "tuner/harness.h"

using namespace restune;

int main() {
  Logger::SetThreshold(LogLevel::kWarning);
  Rng rng(99);

  // 1. Capture: sample a trace window from the Hotel booking workload.
  const WorkloadProfile workload = MakeWorkload(WorkloadKind::kHotel).value();
  WorkloadSqlGenerator generator(workload);
  const std::vector<std::string> trace = generator.Sample(2000, &rng);
  std::printf("captured %zu statements; first three:\n", trace.size());
  for (int i = 0; i < 3; ++i) std::printf("  %s\n", trace[i].c_str());

  // 2. Template extraction.
  Replayer replayer;
  const Status st = replayer.LoadTrace(trace);
  if (!st.ok()) {
    std::fprintf(stderr, "trace load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\n%zu distinct templates (write statements get fresh "
              "parameters on each replay):\n",
              replayer.num_templates());
  for (const auto& [tmpl, count] : replayer.templates()) {
    std::printf("  %6zux  %s\n", count, tmpl.c_str());
  }

  // 3. Replay at the tenant's request rate.
  const std::vector<std::string> replayed = replayer.Replay(5, &rng);
  const std::vector<double> schedule =
      replayer.ScheduleTimestamps(5, workload.request_rate, &rng);
  std::printf("\nreplay at %.0f stmt/s:\n", workload.request_rate);
  for (size_t i = 0; i < replayed.size(); ++i) {
    std::printf("  t=%8.5fs  %s\n", schedule[i], replayed[i].c_str());
  }

  // 4. Workload characterization -> meta-feature.
  const WorkloadCharacterizer characterizer = TrainDefaultCharacterizer();
  const Result<Vector> feature = characterizer.MetaFeature(trace);
  if (!feature.ok()) {
    std::fprintf(stderr, "characterization failed\n");
    return 1;
  }
  std::printf("\nmeta-feature (avg. resource-cost class distribution over "
              "%d classes):\n  [", characterizer.num_cost_classes());
  for (double v : *feature) std::printf(" %.3f", v);
  std::printf(" ]\n");
  std::printf("classifier out-of-bag accuracy: %.1f%%\n",
              100.0 * characterizer.oob_accuracy());

  // Show that the embedding is discriminative: distance to other workloads.
  std::printf("\nmeta-feature distance from Hotel to:\n");
  for (const WorkloadProfile& other : StandardWorkloads()) {
    const Vector f = ComputeMetaFeature(characterizer, other);
    std::printf("  %-10s %.4f\n", other.name.c_str(),
                std::sqrt(SquaredDistance(*feature, f)));
  }
  return 0;
}
