file(REMOVE_RECURSE
  "CMakeFiles/gp_test.dir/gp_test.cc.o"
  "CMakeFiles/gp_test.dir/gp_test.cc.o.d"
  "gp_test"
  "gp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
