# Empty dependencies file for gp_test.
# This may be replaced when dependencies are built.
