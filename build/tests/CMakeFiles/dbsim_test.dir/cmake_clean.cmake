file(REMOVE_RECURSE
  "CMakeFiles/dbsim_test.dir/dbsim_test.cc.o"
  "CMakeFiles/dbsim_test.dir/dbsim_test.cc.o.d"
  "dbsim_test"
  "dbsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
