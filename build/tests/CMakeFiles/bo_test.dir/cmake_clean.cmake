file(REMOVE_RECURSE
  "CMakeFiles/bo_test.dir/bo_test.cc.o"
  "CMakeFiles/bo_test.dir/bo_test.cc.o.d"
  "bo_test"
  "bo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
