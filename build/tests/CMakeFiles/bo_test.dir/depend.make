# Empty dependencies file for bo_test.
# This may be replaced when dependencies are built.
