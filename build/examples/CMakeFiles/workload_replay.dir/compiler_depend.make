# Empty compiler generated dependencies file for workload_replay.
# This may be replaced when dependencies are built.
