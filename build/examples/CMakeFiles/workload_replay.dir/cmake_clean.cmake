file(REMOVE_RECURSE
  "CMakeFiles/workload_replay.dir/workload_replay.cpp.o"
  "CMakeFiles/workload_replay.dir/workload_replay.cpp.o.d"
  "workload_replay"
  "workload_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
