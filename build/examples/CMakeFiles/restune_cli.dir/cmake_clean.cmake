file(REMOVE_RECURSE
  "CMakeFiles/restune_cli.dir/restune_cli.cpp.o"
  "CMakeFiles/restune_cli.dir/restune_cli.cpp.o.d"
  "restune_cli"
  "restune_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restune_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
