# Empty dependencies file for restune_cli.
# This may be replaced when dependencies are built.
