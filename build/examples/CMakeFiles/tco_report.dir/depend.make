# Empty dependencies file for tco_report.
# This may be replaced when dependencies are built.
