file(REMOVE_RECURSE
  "CMakeFiles/tco_report.dir/tco_report.cpp.o"
  "CMakeFiles/tco_report.dir/tco_report.cpp.o.d"
  "tco_report"
  "tco_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tco_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
