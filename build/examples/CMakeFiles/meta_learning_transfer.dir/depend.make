# Empty dependencies file for meta_learning_transfer.
# This may be replaced when dependencies are built.
