file(REMOVE_RECURSE
  "CMakeFiles/meta_learning_transfer.dir/meta_learning_transfer.cpp.o"
  "CMakeFiles/meta_learning_transfer.dir/meta_learning_transfer.cpp.o.d"
  "meta_learning_transfer"
  "meta_learning_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_learning_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
