file(REMOVE_RECURSE
  "CMakeFiles/restune_linalg.dir/cholesky.cc.o"
  "CMakeFiles/restune_linalg.dir/cholesky.cc.o.d"
  "CMakeFiles/restune_linalg.dir/matrix.cc.o"
  "CMakeFiles/restune_linalg.dir/matrix.cc.o.d"
  "librestune_linalg.a"
  "librestune_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restune_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
