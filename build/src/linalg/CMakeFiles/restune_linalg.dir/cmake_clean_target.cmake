file(REMOVE_RECURSE
  "librestune_linalg.a"
)
