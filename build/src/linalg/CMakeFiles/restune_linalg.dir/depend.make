# Empty dependencies file for restune_linalg.
# This may be replaced when dependencies are built.
