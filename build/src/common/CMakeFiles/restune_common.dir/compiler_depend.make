# Empty compiler generated dependencies file for restune_common.
# This may be replaced when dependencies are built.
