file(REMOVE_RECURSE
  "librestune_common.a"
)
