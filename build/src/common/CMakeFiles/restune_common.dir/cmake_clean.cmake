file(REMOVE_RECURSE
  "CMakeFiles/restune_common.dir/logging.cc.o"
  "CMakeFiles/restune_common.dir/logging.cc.o.d"
  "CMakeFiles/restune_common.dir/nelder_mead.cc.o"
  "CMakeFiles/restune_common.dir/nelder_mead.cc.o.d"
  "CMakeFiles/restune_common.dir/rng.cc.o"
  "CMakeFiles/restune_common.dir/rng.cc.o.d"
  "CMakeFiles/restune_common.dir/stats.cc.o"
  "CMakeFiles/restune_common.dir/stats.cc.o.d"
  "CMakeFiles/restune_common.dir/status.cc.o"
  "CMakeFiles/restune_common.dir/status.cc.o.d"
  "CMakeFiles/restune_common.dir/string_util.cc.o"
  "CMakeFiles/restune_common.dir/string_util.cc.o.d"
  "librestune_common.a"
  "librestune_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restune_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
