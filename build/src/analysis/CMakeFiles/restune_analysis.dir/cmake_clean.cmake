file(REMOVE_RECURSE
  "CMakeFiles/restune_analysis.dir/knob_importance.cc.o"
  "CMakeFiles/restune_analysis.dir/knob_importance.cc.o.d"
  "CMakeFiles/restune_analysis.dir/shap.cc.o"
  "CMakeFiles/restune_analysis.dir/shap.cc.o.d"
  "CMakeFiles/restune_analysis.dir/tco.cc.o"
  "CMakeFiles/restune_analysis.dir/tco.cc.o.d"
  "librestune_analysis.a"
  "librestune_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restune_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
