
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/knob_importance.cc" "src/analysis/CMakeFiles/restune_analysis.dir/knob_importance.cc.o" "gcc" "src/analysis/CMakeFiles/restune_analysis.dir/knob_importance.cc.o.d"
  "/root/repo/src/analysis/shap.cc" "src/analysis/CMakeFiles/restune_analysis.dir/shap.cc.o" "gcc" "src/analysis/CMakeFiles/restune_analysis.dir/shap.cc.o.d"
  "/root/repo/src/analysis/tco.cc" "src/analysis/CMakeFiles/restune_analysis.dir/tco.cc.o" "gcc" "src/analysis/CMakeFiles/restune_analysis.dir/tco.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dbsim/CMakeFiles/restune_dbsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bo/CMakeFiles/restune_bo.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/restune_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/restune_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/restune_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
