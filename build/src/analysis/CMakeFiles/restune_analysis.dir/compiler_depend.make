# Empty compiler generated dependencies file for restune_analysis.
# This may be replaced when dependencies are built.
