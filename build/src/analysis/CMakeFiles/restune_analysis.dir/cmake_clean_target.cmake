file(REMOVE_RECURSE
  "librestune_analysis.a"
)
