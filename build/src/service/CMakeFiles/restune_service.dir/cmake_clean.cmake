file(REMOVE_RECURSE
  "CMakeFiles/restune_service.dir/restune_client.cc.o"
  "CMakeFiles/restune_service.dir/restune_client.cc.o.d"
  "CMakeFiles/restune_service.dir/restune_server.cc.o"
  "CMakeFiles/restune_service.dir/restune_server.cc.o.d"
  "librestune_service.a"
  "librestune_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restune_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
