# Empty compiler generated dependencies file for restune_service.
# This may be replaced when dependencies are built.
