file(REMOVE_RECURSE
  "librestune_service.a"
)
