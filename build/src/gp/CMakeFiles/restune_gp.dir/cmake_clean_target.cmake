file(REMOVE_RECURSE
  "librestune_gp.a"
)
