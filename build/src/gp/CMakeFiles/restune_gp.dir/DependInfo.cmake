
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gp/gp_model.cc" "src/gp/CMakeFiles/restune_gp.dir/gp_model.cc.o" "gcc" "src/gp/CMakeFiles/restune_gp.dir/gp_model.cc.o.d"
  "/root/repo/src/gp/gp_serialization.cc" "src/gp/CMakeFiles/restune_gp.dir/gp_serialization.cc.o" "gcc" "src/gp/CMakeFiles/restune_gp.dir/gp_serialization.cc.o.d"
  "/root/repo/src/gp/kernel.cc" "src/gp/CMakeFiles/restune_gp.dir/kernel.cc.o" "gcc" "src/gp/CMakeFiles/restune_gp.dir/kernel.cc.o.d"
  "/root/repo/src/gp/multi_output_gp.cc" "src/gp/CMakeFiles/restune_gp.dir/multi_output_gp.cc.o" "gcc" "src/gp/CMakeFiles/restune_gp.dir/multi_output_gp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/restune_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/restune_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
