# Empty compiler generated dependencies file for restune_gp.
# This may be replaced when dependencies are built.
