file(REMOVE_RECURSE
  "CMakeFiles/restune_gp.dir/gp_model.cc.o"
  "CMakeFiles/restune_gp.dir/gp_model.cc.o.d"
  "CMakeFiles/restune_gp.dir/gp_serialization.cc.o"
  "CMakeFiles/restune_gp.dir/gp_serialization.cc.o.d"
  "CMakeFiles/restune_gp.dir/kernel.cc.o"
  "CMakeFiles/restune_gp.dir/kernel.cc.o.d"
  "CMakeFiles/restune_gp.dir/multi_output_gp.cc.o"
  "CMakeFiles/restune_gp.dir/multi_output_gp.cc.o.d"
  "librestune_gp.a"
  "librestune_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restune_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
