file(REMOVE_RECURSE
  "CMakeFiles/restune_bo.dir/acq_optimizer.cc.o"
  "CMakeFiles/restune_bo.dir/acq_optimizer.cc.o.d"
  "CMakeFiles/restune_bo.dir/acquisition.cc.o"
  "CMakeFiles/restune_bo.dir/acquisition.cc.o.d"
  "CMakeFiles/restune_bo.dir/batch.cc.o"
  "CMakeFiles/restune_bo.dir/batch.cc.o.d"
  "CMakeFiles/restune_bo.dir/lhs.cc.o"
  "CMakeFiles/restune_bo.dir/lhs.cc.o.d"
  "librestune_bo.a"
  "librestune_bo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restune_bo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
