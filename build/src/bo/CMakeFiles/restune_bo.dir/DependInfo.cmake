
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bo/acq_optimizer.cc" "src/bo/CMakeFiles/restune_bo.dir/acq_optimizer.cc.o" "gcc" "src/bo/CMakeFiles/restune_bo.dir/acq_optimizer.cc.o.d"
  "/root/repo/src/bo/acquisition.cc" "src/bo/CMakeFiles/restune_bo.dir/acquisition.cc.o" "gcc" "src/bo/CMakeFiles/restune_bo.dir/acquisition.cc.o.d"
  "/root/repo/src/bo/batch.cc" "src/bo/CMakeFiles/restune_bo.dir/batch.cc.o" "gcc" "src/bo/CMakeFiles/restune_bo.dir/batch.cc.o.d"
  "/root/repo/src/bo/lhs.cc" "src/bo/CMakeFiles/restune_bo.dir/lhs.cc.o" "gcc" "src/bo/CMakeFiles/restune_bo.dir/lhs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gp/CMakeFiles/restune_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/restune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/restune_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
