file(REMOVE_RECURSE
  "librestune_bo.a"
)
