# Empty dependencies file for restune_bo.
# This may be replaced when dependencies are built.
