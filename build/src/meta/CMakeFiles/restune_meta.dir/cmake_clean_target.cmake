file(REMOVE_RECURSE
  "librestune_meta.a"
)
