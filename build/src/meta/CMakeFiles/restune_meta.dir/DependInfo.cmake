
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meta/base_learner.cc" "src/meta/CMakeFiles/restune_meta.dir/base_learner.cc.o" "gcc" "src/meta/CMakeFiles/restune_meta.dir/base_learner.cc.o.d"
  "/root/repo/src/meta/data_repository.cc" "src/meta/CMakeFiles/restune_meta.dir/data_repository.cc.o" "gcc" "src/meta/CMakeFiles/restune_meta.dir/data_repository.cc.o.d"
  "/root/repo/src/meta/meta_feature.cc" "src/meta/CMakeFiles/restune_meta.dir/meta_feature.cc.o" "gcc" "src/meta/CMakeFiles/restune_meta.dir/meta_feature.cc.o.d"
  "/root/repo/src/meta/meta_learner.cc" "src/meta/CMakeFiles/restune_meta.dir/meta_learner.cc.o" "gcc" "src/meta/CMakeFiles/restune_meta.dir/meta_learner.cc.o.d"
  "/root/repo/src/meta/standardizer.cc" "src/meta/CMakeFiles/restune_meta.dir/standardizer.cc.o" "gcc" "src/meta/CMakeFiles/restune_meta.dir/standardizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bo/CMakeFiles/restune_bo.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/restune_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/restune_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/restune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/restune_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
