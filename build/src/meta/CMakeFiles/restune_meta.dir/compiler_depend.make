# Empty compiler generated dependencies file for restune_meta.
# This may be replaced when dependencies are built.
