file(REMOVE_RECURSE
  "CMakeFiles/restune_meta.dir/base_learner.cc.o"
  "CMakeFiles/restune_meta.dir/base_learner.cc.o.d"
  "CMakeFiles/restune_meta.dir/data_repository.cc.o"
  "CMakeFiles/restune_meta.dir/data_repository.cc.o.d"
  "CMakeFiles/restune_meta.dir/meta_feature.cc.o"
  "CMakeFiles/restune_meta.dir/meta_feature.cc.o.d"
  "CMakeFiles/restune_meta.dir/meta_learner.cc.o"
  "CMakeFiles/restune_meta.dir/meta_learner.cc.o.d"
  "CMakeFiles/restune_meta.dir/standardizer.cc.o"
  "CMakeFiles/restune_meta.dir/standardizer.cc.o.d"
  "librestune_meta.a"
  "librestune_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restune_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
