file(REMOVE_RECURSE
  "CMakeFiles/restune_ml.dir/decision_tree.cc.o"
  "CMakeFiles/restune_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/restune_ml.dir/random_forest.cc.o"
  "CMakeFiles/restune_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/restune_ml.dir/sql_tokens.cc.o"
  "CMakeFiles/restune_ml.dir/sql_tokens.cc.o.d"
  "CMakeFiles/restune_ml.dir/tfidf.cc.o"
  "CMakeFiles/restune_ml.dir/tfidf.cc.o.d"
  "librestune_ml.a"
  "librestune_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restune_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
