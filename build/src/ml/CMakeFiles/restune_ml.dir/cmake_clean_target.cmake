file(REMOVE_RECURSE
  "librestune_ml.a"
)
