# Empty dependencies file for restune_ml.
# This may be replaced when dependencies are built.
