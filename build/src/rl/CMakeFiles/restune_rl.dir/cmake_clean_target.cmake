file(REMOVE_RECURSE
  "librestune_rl.a"
)
