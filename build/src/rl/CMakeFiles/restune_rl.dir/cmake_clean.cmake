file(REMOVE_RECURSE
  "CMakeFiles/restune_rl.dir/ddpg.cc.o"
  "CMakeFiles/restune_rl.dir/ddpg.cc.o.d"
  "CMakeFiles/restune_rl.dir/mlp.cc.o"
  "CMakeFiles/restune_rl.dir/mlp.cc.o.d"
  "librestune_rl.a"
  "librestune_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restune_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
