# Empty compiler generated dependencies file for restune_rl.
# This may be replaced when dependencies are built.
