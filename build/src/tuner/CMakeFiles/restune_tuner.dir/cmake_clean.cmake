file(REMOVE_RECURSE
  "CMakeFiles/restune_tuner.dir/cbo_advisor.cc.o"
  "CMakeFiles/restune_tuner.dir/cbo_advisor.cc.o.d"
  "CMakeFiles/restune_tuner.dir/cdbtune_advisor.cc.o"
  "CMakeFiles/restune_tuner.dir/cdbtune_advisor.cc.o.d"
  "CMakeFiles/restune_tuner.dir/grid_advisor.cc.o"
  "CMakeFiles/restune_tuner.dir/grid_advisor.cc.o.d"
  "CMakeFiles/restune_tuner.dir/harness.cc.o"
  "CMakeFiles/restune_tuner.dir/harness.cc.o.d"
  "CMakeFiles/restune_tuner.dir/ottertune_advisor.cc.o"
  "CMakeFiles/restune_tuner.dir/ottertune_advisor.cc.o.d"
  "CMakeFiles/restune_tuner.dir/restune_advisor.cc.o"
  "CMakeFiles/restune_tuner.dir/restune_advisor.cc.o.d"
  "CMakeFiles/restune_tuner.dir/session.cc.o"
  "CMakeFiles/restune_tuner.dir/session.cc.o.d"
  "librestune_tuner.a"
  "librestune_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restune_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
