# Empty compiler generated dependencies file for restune_tuner.
# This may be replaced when dependencies are built.
