file(REMOVE_RECURSE
  "librestune_tuner.a"
)
