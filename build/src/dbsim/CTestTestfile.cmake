# CMake generated Testfile for 
# Source directory: /root/repo/src/dbsim
# Build directory: /root/repo/build/src/dbsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
