
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbsim/des/engine_des.cc" "src/dbsim/CMakeFiles/restune_dbsim.dir/des/engine_des.cc.o" "gcc" "src/dbsim/CMakeFiles/restune_dbsim.dir/des/engine_des.cc.o.d"
  "/root/repo/src/dbsim/des/lock_manager.cc" "src/dbsim/CMakeFiles/restune_dbsim.dir/des/lock_manager.cc.o" "gcc" "src/dbsim/CMakeFiles/restune_dbsim.dir/des/lock_manager.cc.o.d"
  "/root/repo/src/dbsim/des/page_cache.cc" "src/dbsim/CMakeFiles/restune_dbsim.dir/des/page_cache.cc.o" "gcc" "src/dbsim/CMakeFiles/restune_dbsim.dir/des/page_cache.cc.o.d"
  "/root/repo/src/dbsim/des/zipf.cc" "src/dbsim/CMakeFiles/restune_dbsim.dir/des/zipf.cc.o" "gcc" "src/dbsim/CMakeFiles/restune_dbsim.dir/des/zipf.cc.o.d"
  "/root/repo/src/dbsim/engine.cc" "src/dbsim/CMakeFiles/restune_dbsim.dir/engine.cc.o" "gcc" "src/dbsim/CMakeFiles/restune_dbsim.dir/engine.cc.o.d"
  "/root/repo/src/dbsim/hardware.cc" "src/dbsim/CMakeFiles/restune_dbsim.dir/hardware.cc.o" "gcc" "src/dbsim/CMakeFiles/restune_dbsim.dir/hardware.cc.o.d"
  "/root/repo/src/dbsim/knob.cc" "src/dbsim/CMakeFiles/restune_dbsim.dir/knob.cc.o" "gcc" "src/dbsim/CMakeFiles/restune_dbsim.dir/knob.cc.o.d"
  "/root/repo/src/dbsim/simulator.cc" "src/dbsim/CMakeFiles/restune_dbsim.dir/simulator.cc.o" "gcc" "src/dbsim/CMakeFiles/restune_dbsim.dir/simulator.cc.o.d"
  "/root/repo/src/dbsim/workload.cc" "src/dbsim/CMakeFiles/restune_dbsim.dir/workload.cc.o" "gcc" "src/dbsim/CMakeFiles/restune_dbsim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gp/CMakeFiles/restune_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/restune_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/restune_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
