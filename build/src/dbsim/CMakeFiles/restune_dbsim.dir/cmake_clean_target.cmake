file(REMOVE_RECURSE
  "librestune_dbsim.a"
)
