file(REMOVE_RECURSE
  "CMakeFiles/restune_dbsim.dir/des/engine_des.cc.o"
  "CMakeFiles/restune_dbsim.dir/des/engine_des.cc.o.d"
  "CMakeFiles/restune_dbsim.dir/des/lock_manager.cc.o"
  "CMakeFiles/restune_dbsim.dir/des/lock_manager.cc.o.d"
  "CMakeFiles/restune_dbsim.dir/des/page_cache.cc.o"
  "CMakeFiles/restune_dbsim.dir/des/page_cache.cc.o.d"
  "CMakeFiles/restune_dbsim.dir/des/zipf.cc.o"
  "CMakeFiles/restune_dbsim.dir/des/zipf.cc.o.d"
  "CMakeFiles/restune_dbsim.dir/engine.cc.o"
  "CMakeFiles/restune_dbsim.dir/engine.cc.o.d"
  "CMakeFiles/restune_dbsim.dir/hardware.cc.o"
  "CMakeFiles/restune_dbsim.dir/hardware.cc.o.d"
  "CMakeFiles/restune_dbsim.dir/knob.cc.o"
  "CMakeFiles/restune_dbsim.dir/knob.cc.o.d"
  "CMakeFiles/restune_dbsim.dir/simulator.cc.o"
  "CMakeFiles/restune_dbsim.dir/simulator.cc.o.d"
  "CMakeFiles/restune_dbsim.dir/workload.cc.o"
  "CMakeFiles/restune_dbsim.dir/workload.cc.o.d"
  "librestune_dbsim.a"
  "librestune_dbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restune_dbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
