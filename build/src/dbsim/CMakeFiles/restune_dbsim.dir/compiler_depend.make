# Empty compiler generated dependencies file for restune_dbsim.
# This may be replaced when dependencies are built.
