file(REMOVE_RECURSE
  "librestune_sqlgen.a"
)
