# Empty compiler generated dependencies file for restune_sqlgen.
# This may be replaced when dependencies are built.
