
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqlgen/generator.cc" "src/sqlgen/CMakeFiles/restune_sqlgen.dir/generator.cc.o" "gcc" "src/sqlgen/CMakeFiles/restune_sqlgen.dir/generator.cc.o.d"
  "/root/repo/src/sqlgen/replayer.cc" "src/sqlgen/CMakeFiles/restune_sqlgen.dir/replayer.cc.o" "gcc" "src/sqlgen/CMakeFiles/restune_sqlgen.dir/replayer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dbsim/CMakeFiles/restune_dbsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/restune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/restune_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/restune_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
