file(REMOVE_RECURSE
  "CMakeFiles/restune_sqlgen.dir/generator.cc.o"
  "CMakeFiles/restune_sqlgen.dir/generator.cc.o.d"
  "CMakeFiles/restune_sqlgen.dir/replayer.cc.o"
  "CMakeFiles/restune_sqlgen.dir/replayer.cc.o.d"
  "librestune_sqlgen.a"
  "librestune_sqlgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restune_sqlgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
