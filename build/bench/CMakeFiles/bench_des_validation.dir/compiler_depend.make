# Empty compiler generated dependencies file for bench_des_validation.
# This may be replaced when dependencies are built.
