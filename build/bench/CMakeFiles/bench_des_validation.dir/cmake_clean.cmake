file(REMOVE_RECURSE
  "CMakeFiles/bench_des_validation.dir/bench_des_validation.cc.o"
  "CMakeFiles/bench_des_validation.dir/bench_des_validation.cc.o.d"
  "bench_des_validation"
  "bench_des_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_des_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
