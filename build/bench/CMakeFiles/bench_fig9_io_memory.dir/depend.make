# Empty dependencies file for bench_fig9_io_memory.
# This may be replaced when dependencies are built.
