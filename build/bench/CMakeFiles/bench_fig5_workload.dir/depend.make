# Empty dependencies file for bench_fig5_workload.
# This may be replaced when dependencies are built.
