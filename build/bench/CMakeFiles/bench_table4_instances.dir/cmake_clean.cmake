file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_instances.dir/bench_table4_instances.cc.o"
  "CMakeFiles/bench_table4_instances.dir/bench_table4_instances.cc.o.d"
  "bench_table4_instances"
  "bench_table4_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
