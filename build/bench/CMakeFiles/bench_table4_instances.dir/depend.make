# Empty dependencies file for bench_table4_instances.
# This may be replaced when dependencies are built.
