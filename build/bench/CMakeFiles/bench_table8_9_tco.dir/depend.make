# Empty dependencies file for bench_table8_9_tco.
# This may be replaced when dependencies are built.
