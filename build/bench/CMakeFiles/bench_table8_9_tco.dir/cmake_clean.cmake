file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_9_tco.dir/bench_table8_9_tco.cc.o"
  "CMakeFiles/bench_table8_9_tco.dir/bench_table8_9_tco.cc.o.d"
  "bench_table8_9_tco"
  "bench_table8_9_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_9_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
