# Empty compiler generated dependencies file for bench_table7_data_size.
# This may be replaced when dependencies are built.
