file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_hardware.dir/bench_fig4_hardware.cc.o"
  "CMakeFiles/bench_fig4_hardware.dir/bench_fig4_hardware.cc.o.d"
  "bench_fig4_hardware"
  "bench_fig4_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
