# Empty dependencies file for bench_fig3_efficiency.
# This may be replaced when dependencies are built.
