file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_shap.dir/bench_fig7_shap.cc.o"
  "CMakeFiles/bench_fig7_shap.dir/bench_fig7_shap.cc.o.d"
  "bench_fig7_shap"
  "bench_fig7_shap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_shap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
