# Empty dependencies file for bench_fig7_shap.
# This may be replaced when dependencies are built.
