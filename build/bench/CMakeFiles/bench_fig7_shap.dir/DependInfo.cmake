
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_shap.cc" "bench/CMakeFiles/bench_fig7_shap.dir/bench_fig7_shap.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_shap.dir/bench_fig7_shap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/service/CMakeFiles/restune_service.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/restune_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/restune_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/restune_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/restune_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlgen/CMakeFiles/restune_sqlgen.dir/DependInfo.cmake"
  "/root/repo/build/src/dbsim/CMakeFiles/restune_dbsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bo/CMakeFiles/restune_bo.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/restune_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/restune_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/restune_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/restune_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
