file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_heatmap.dir/bench_fig1_heatmap.cc.o"
  "CMakeFiles/bench_fig1_heatmap.dir/bench_fig1_heatmap.cc.o.d"
  "bench_fig1_heatmap"
  "bench_fig1_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
