# Empty compiler generated dependencies file for bench_fig1_heatmap.
# This may be replaced when dependencies are built.
