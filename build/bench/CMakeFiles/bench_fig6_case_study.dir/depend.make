# Empty dependencies file for bench_fig6_case_study.
# This may be replaced when dependencies are built.
